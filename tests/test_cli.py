"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import NETWORK_CHOICES, build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_command_parses(self):
        args = build_parser().parse_args(["experiment", "E8", "--scale", "small", "--seed", "3"])
        assert args.experiment_id == "E8"
        assert args.scale == "small"
        assert args.seed == 3

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.network == "clique"
        assert args.algorithm == "async"
        assert args.n == 100
        assert args.engine == "boundary"
        assert args.workers == 1

    def test_simulate_engine_and_workers_parse(self):
        args = build_parser().parse_args(
            ["simulate", "--engine", "naive", "--workers", "4"]
        )
        assert args.engine == "naive"
        assert args.workers == 4

    def test_simulate_new_engines_parse(self):
        for engine in ("batched", "jit", "auto"):
            args = build_parser().parse_args(["simulate", "--engine", engine])
            assert args.engine == engine

    def test_simulate_profile_flag_parses(self):
        args = build_parser().parse_args(["simulate", "--profile"])
        assert args.profile is True
        assert build_parser().parse_args(["simulate"]).profile is False

    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--engine", "telepathy"])

    def test_simulate_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--network", "hypercube"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_all_experiment_ids(self):
        buffer = io.StringIO()
        assert main(["list"], out=buffer) == 0
        text = buffer.getvalue()
        for experiment_id in ("E1", "E5", "E9"):
            assert experiment_id in text

    def test_simulate_async_clique(self):
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "clique", "--n", "20", "--trials", "3", "--seed", "1"],
            out=buffer,
        )
        assert code == 0
        assert "mean" in buffer.getvalue()

    def test_simulate_naive_engine_with_workers(self):
        buffer = io.StringIO()
        code = main(
            [
                "simulate",
                "--network", "clique",
                "--n", "12",
                "--trials", "4",
                "--seed", "1",
                "--engine", "naive",
                "--workers", "2",
            ],
            out=buffer,
        )
        assert code == 0
        assert "mean" in buffer.getvalue()

    def test_simulate_sync_dynamic_star(self):
        buffer = io.StringIO()
        code = main(
            [
                "simulate",
                "--network",
                "dynamic-star",
                "--n",
                "15",
                "--trials",
                "2",
                "--algorithm",
                "sync",
            ],
            out=buffer,
        )
        assert code == 0
        assert "rounds" in buffer.getvalue()

    def test_simulate_push_variant(self):
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "cycle", "--n", "12", "--trials", "2", "--variant", "push"],
            out=buffer,
        )
        assert code == 0

    def test_experiment_command_runs_lemma_4_2(self):
        buffer = io.StringIO()
        code = main(
            ["experiment", "e8", "--scale", "small", "--seed", "5", "--no-cache"],
            out=buffer,
        )
        assert code == 0
        assert "Lemma 4.2" in buffer.getvalue()

    def test_every_network_choice_is_a_registered_family(self):
        from repro.scenarios import build_network, network_families

        assert set(NETWORK_CHOICES) == set(network_families())
        for name in ("clique", "dynamic-star", "edge-markovian"):
            network = build_network(name, n=60, rng=0)
            assert network.n >= 1


class TestSimulateFlagValidation:
    def run_cli(self, argv):
        buffer = io.StringIO()
        code = main(argv, out=buffer)
        return code, buffer.getvalue()

    def test_sync_rejects_explicit_variant(self, capsys):
        code, _ = self.run_cli(
            ["simulate", "--algorithm", "sync", "--variant", "push", "--n", "10", "--trials", "2"]
        )
        assert code == 2
        assert "--variant" in capsys.readouterr().err

    def test_sync_rejects_explicit_engine(self, capsys):
        code, _ = self.run_cli(
            ["simulate", "--algorithm", "sync", "--engine", "naive", "--n", "10", "--trials", "2"]
        )
        assert code == 2
        assert "--engine" in capsys.readouterr().err

    def test_sync_without_async_flags_is_fine(self):
        code, text = self.run_cli(
            ["simulate", "--algorithm", "sync", "--n", "10", "--trials", "2"]
        )
        assert code == 0
        assert "rounds" in text

    def test_network_irrelevant_rho_rejected(self, capsys):
        code, _ = self.run_cli(
            ["simulate", "--network", "clique", "--rho", "0.5", "--n", "10", "--trials", "2"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--rho" in err and "clique" in err

    def test_network_irrelevant_birth_rejected(self, capsys):
        code, _ = self.run_cli(
            ["simulate", "--network", "star", "--birth", "0.5", "--n", "10", "--trials", "2"]
        )
        assert code == 2
        assert "--birth" in capsys.readouterr().err

    def test_applicable_flags_accepted(self):
        code, _ = self.run_cli(
            ["simulate", "--network", "diligent", "--rho", "0.25", "--n", "48", "--trials", "2"]
        )
        assert code == 0


class TestJsonOutput:
    def test_simulate_json_schema(self):
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "clique", "--n", "16", "--trials", "3", "--json"],
            out=buffer,
        )
        assert code == 0
        document = json.loads(buffer.getvalue())
        assert document["network"] == "clique"
        assert document["nodes"] == 16
        assert document["params"] == {"n": 16}
        assert {"trials", "completion_rate", "mean", "median", "whp", "min", "max", "std"} <= set(
            document["summary"]
        )

    def test_simulate_batched_engine_runs(self):
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "clique", "--n", "32", "--trials", "5",
             "--engine", "batched", "--json"],
            out=buffer,
        )
        assert code == 0
        document = json.loads(buffer.getvalue())
        assert document["summary"]["trials"] == 5

    def test_simulate_batched_engine_rejects_dynamic_network(self, capsys):
        code = main(
            ["simulate", "--network", "dynamic-star", "--n", "16",
             "--engine", "batched"],
            out=io.StringIO(),
        )
        assert code != 0
        assert "static" in capsys.readouterr().err

    def test_simulate_profile_prints_table_to_stderr(self, capsys):
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "clique", "--n", "16", "--trials", "2",
             "--profile", "--json"],
            out=buffer,
        )
        assert code == 0
        # --json output on stdout must stay machine-parseable...
        document = json.loads(buffer.getvalue())
        assert document["network"] == "clique"
        # ...while the profile table lands on stderr.
        err = capsys.readouterr().err
        assert "cumulative" in err
        assert "function calls" in err

    @pytest.mark.parametrize(
        "engine,resolved",
        [("batched", "batched"), ("jit", "jit"), ("boundary", "boundary"),
         ("auto", "batched")],  # auto on a static family takes the batched path
    )
    def test_simulate_profile_names_resolved_engine(self, capsys, engine, resolved):
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "clique", "--n", "16", "--trials", "2",
             "--engine", engine, "--profile"],
            out=buffer,
        )
        assert code == 0
        err = capsys.readouterr().err
        assert f"profiled engine: {resolved}" in err
        # The engine line must come before the stats table it annotates.
        assert err.index("profiled engine:") < err.index("cumulative")

    def test_simulate_profile_engine_line_on_failed_run(self, capsys):
        # engine='batched' on a dynamic network fails at run time, but the
        # profile footer still names the engine whose path was profiled.
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "edge-markovian", "--n", "12",
             "--birth", "0.4", "--death", "0.2", "--trials", "2",
             "--engine", "batched", "--profile"],
            out=buffer,
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "profiled engine: batched" in err

    def test_simulate_profile_engine_line_on_invalid_combination(self, capsys):
        # A spec that fails validation outright must still print the footer,
        # with a placeholder, instead of raising a second error from the
        # resolution probe.  main() pre-rejects sync+variant before the
        # profiler starts, so drive the command handler directly.
        from repro import cli as cli_module

        args = build_parser().parse_args(
            ["simulate", "--network", "clique", "--n", "12", "--trials", "2",
             "--profile"]
        )
        args.algorithm = "sync"
        args.variant = "push"
        buffer = io.StringIO()
        code = cli_module._command_simulate(args, buffer)
        assert code == 2
        err = capsys.readouterr().err
        assert "profiled engine: unresolved (invalid configuration)" in err

    def test_experiment_json_schema(self):
        buffer = io.StringIO()
        code = main(["experiment", "E8", "--json", "--no-cache"], out=buffer)
        assert code == 0
        document = json.loads(buffer.getvalue())
        assert set(document) == {
            "experiment_id", "title", "claim", "rows", "derived", "passed", "notes",
            "execution",
        }
        assert document["experiment_id"] == "E8"
        assert document["passed"] is True
        assert isinstance(document["rows"], list) and document["rows"]
        assert document["execution"]["failures"] == 0

    def test_report_json_schema(self):
        buffer = io.StringIO()
        code = main(["report", "--only", "E8", "--json", "--no-cache"], out=buffer)
        assert code == 0
        document = json.loads(buffer.getvalue())
        assert set(document) == {"passed", "checked", "results"}
        assert set(document["results"]) == {"E8"}
        assert document["results"]["E8"]["experiment_id"] == "E8"


class TestJsonStrictness:
    def test_infinite_values_serialise_as_strings(self):
        # E3's Tabs_if_reached column is inf whenever the run finishes before
        # the budget accumulates — the JSON output must stay RFC-8259 valid.
        buffer = io.StringIO()
        code = main(["experiment", "E3", "--json", "--no-cache"], out=buffer)
        assert code == 0
        text = buffer.getvalue()
        document = json.loads(
            text, parse_constant=lambda token: pytest.fail(f"bare {token} literal emitted")
        )
        assert any(
            row["Tabs_if_reached"] == "Infinity" for row in document["rows"]
        )

    def test_abbreviated_flags_rejected_not_silently_expanded(self):
        # With allow_abbrev, `--varia` would expand to --variant and dodge the
        # sync-flag validation; the parser must reject abbreviations instead.
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--algorithm", "sync", "--varia", "push"]
            )


class TestReportIdValidation:
    def test_bad_only_id_fails_fast_with_known_ids(self, capsys):
        buffer = io.StringIO()
        code = main(["report", "--only", "BADID", "--no-cache"], out=buffer)
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment id" in err
        assert "E1" in err and "E9" in err

    def test_lowercase_only_id_accepted(self):
        buffer = io.StringIO()
        code = main(["report", "--only", "e8", "--no-cache"], out=buffer)
        assert code == 0
        assert "E8" in buffer.getvalue()

    def test_duplicate_only_ids_run_once(self):
        from repro.experiments.reporting import validate_experiment_ids

        assert validate_experiment_ids(["E8", "e8", "E1"]) == ["E8", "E1"]


class TestScenariosCommands:
    def test_scenarios_list_mentions_families_and_experiments(self):
        buffer = io.StringIO()
        code = main(["scenarios", "list"], out=buffer)
        assert code == 0
        text = buffer.getvalue()
        for token in ("clique", "edge-markovian", "E1", "E9", "two_push_chain"):
            assert token in text

    def test_scenarios_list_json(self):
        buffer = io.StringIO()
        code = main(["scenarios", "list", "--json"], out=buffer)
        assert code == 0
        document = json.loads(buffer.getvalue())
        assert "clique" in document["networks"]
        assert document["networks"]["clique"]["params"] == {"n": None}
        assert "E1" in document["experiments"]

    def test_scenarios_run_file(self, tmp_path):
        scenario_file = tmp_path / "scenarios.json"
        scenario_file.write_text(
            json.dumps(
                {
                    "scenarios": [
                        {
                            "label": "tiny clique",
                            "network": "clique",
                            "sweep": [8, 12],
                            "trials": 2,
                            "seed": 3,
                        }
                    ]
                }
            )
        )
        buffer = io.StringIO()
        code = main(
            ["scenarios", "run", str(scenario_file), "--cache-dir", str(tmp_path / "cache")],
            out=buffer,
        )
        assert code == 0
        assert "tiny clique" in buffer.getvalue()

    def test_scenarios_run_missing_file_clean_error(self, capsys):
        buffer = io.StringIO()
        code = main(["scenarios", "run", "/nonexistent/scenarios.json"], out=buffer)
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_scenarios_run_invalid_scenario_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"label": "x", "network": "bogus-family"}))
        buffer = io.StringIO()
        code = main(["scenarios", "run", str(bad)], out=buffer)
        assert code == 2
        assert "known families" in capsys.readouterr().err

    def test_scenarios_run_empty_file_clean_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        buffer = io.StringIO()
        code = main(["scenarios", "run", str(empty)], out=buffer)
        assert code == 2
        assert "no scenarios" in capsys.readouterr().err

    def test_invalid_jobs_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E8", "--jobs", "0"])

    def test_scenarios_run_json_payloads(self, tmp_path):
        scenario_file = tmp_path / "one.json"
        scenario_file.write_text(
            json.dumps({"label": "one", "network": "star", "sweep": [8], "trials": 2, "seed": 1})
        )
        buffer = io.StringIO()
        code = main(["scenarios", "run", str(scenario_file), "--json", "--no-cache"], out=buffer)
        assert code == 0
        points = json.loads(buffer.getvalue())
        assert len(points) == 1
        assert points[0]["label"] == "one"
        assert points[0]["payload"]["n"] == 8
        assert len(points[0]["payload"]["spread_times"]) == 2
