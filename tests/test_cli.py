"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import NETWORK_CHOICES, build_parser, main


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_experiment_command_parses(self):
        args = build_parser().parse_args(["experiment", "E8", "--scale", "small", "--seed", "3"])
        assert args.experiment_id == "E8"
        assert args.scale == "small"
        assert args.seed == 3

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.network == "clique"
        assert args.algorithm == "async"
        assert args.n == 100
        assert args.engine == "boundary"
        assert args.workers == 1

    def test_simulate_engine_and_workers_parse(self):
        args = build_parser().parse_args(
            ["simulate", "--engine", "naive", "--workers", "4"]
        )
        assert args.engine == "naive"
        assert args.workers == 4

    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--engine", "telepathy"])

    def test_simulate_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--network", "hypercube"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_all_experiment_ids(self):
        buffer = io.StringIO()
        assert main(["list"], out=buffer) == 0
        text = buffer.getvalue()
        for experiment_id in ("E1", "E5", "E9"):
            assert experiment_id in text

    def test_simulate_async_clique(self):
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "clique", "--n", "20", "--trials", "3", "--seed", "1"],
            out=buffer,
        )
        assert code == 0
        assert "mean" in buffer.getvalue()

    def test_simulate_naive_engine_with_workers(self):
        buffer = io.StringIO()
        code = main(
            [
                "simulate",
                "--network", "clique",
                "--n", "12",
                "--trials", "4",
                "--seed", "1",
                "--engine", "naive",
                "--workers", "2",
            ],
            out=buffer,
        )
        assert code == 0
        assert "mean" in buffer.getvalue()

    def test_simulate_sync_dynamic_star(self):
        buffer = io.StringIO()
        code = main(
            [
                "simulate",
                "--network",
                "dynamic-star",
                "--n",
                "15",
                "--trials",
                "2",
                "--algorithm",
                "sync",
            ],
            out=buffer,
        )
        assert code == 0
        assert "rounds" in buffer.getvalue()

    def test_simulate_push_variant(self):
        buffer = io.StringIO()
        code = main(
            ["simulate", "--network", "cycle", "--n", "12", "--trials", "2", "--variant", "push"],
            out=buffer,
        )
        assert code == 0

    def test_experiment_command_runs_lemma_4_2(self):
        buffer = io.StringIO()
        code = main(["experiment", "e8", "--scale", "small", "--seed", "5"], out=buffer)
        assert code == 0
        assert "Lemma 4.2" in buffer.getvalue()

    def test_every_network_choice_has_a_factory(self):
        from repro.cli import _network_factories

        args = build_parser().parse_args(
            ["simulate", "--n", "60", "--rho", "0.25", "--side", "6", "--seed", "0"]
        )
        factories = _network_factories(args)
        assert set(NETWORK_CHOICES) == set(factories)
        for name in ("clique", "dynamic-star", "edge-markovian"):
            network = factories[name]()
            assert network.n >= 1
