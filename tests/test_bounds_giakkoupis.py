"""Unit tests for the Giakkoupis–Sauerwald–Stauffer comparison bound."""

import math

import pytest

from repro.bounds.giakkoupis import giakkoupis_bound, giakkoupis_threshold


class TestThreshold:
    def test_threshold_formula(self):
        assert giakkoupis_threshold(100, 5.0) == pytest.approx(5.0 * math.log(100))
        assert giakkoupis_threshold(100, 5.0, constant=2.0) == pytest.approx(10.0 * math.log(100))

    def test_threshold_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            giakkoupis_threshold(1, 5.0)
        with pytest.raises(ValueError):
            giakkoupis_threshold(100, 0.0)


class TestBound:
    def test_regular_history_gives_conductance_only_bound(self):
        n = 64
        history = {u: [3, 3] for u in range(n)}
        steps = int(math.ceil(math.log(n) / 0.5)) + 2
        evaluation = giakkoupis_bound([0.5] * steps, history, n)
        assert evaluation.reached
        assert evaluation.threshold == pytest.approx(math.log(n))

    def test_degree_swing_inflates_the_threshold(self):
        n = 64
        swing_history = {u: [3, n - 1] for u in range(n)}
        flat_history = {u: [3, 3] for u in range(n)}
        swing = giakkoupis_bound([0.5] * 10, swing_history, n)
        flat = giakkoupis_bound([0.5] * 10, flat_history, n)
        assert swing.threshold == pytest.approx(flat.threshold * (n - 1) / 3)

    def test_unreached_bound_is_infinite(self):
        history = {0: [2], 1: [2]}
        evaluation = giakkoupis_bound([0.01, 0.01], history, 32)
        assert not evaluation.reached
        assert math.isinf(evaluation.bound)

    def test_negative_conductance_rejected(self):
        with pytest.raises(ValueError):
            giakkoupis_bound([-0.1], {0: [2]}, 16)
