"""Result-sink enumeration, artifact retrieval, and crash-safe writes.

The service's ``GET /artifacts`` endpoints lean on three additions to the
sink interface — ``keys()``, ``__contains__`` and ``artifact(key)`` — and on
``LocalDirSink.store`` never leaving a torn artifact behind, no matter when
a writer dies.  These tests pin all of that down for every built-in sink.
"""

import json
import threading

import pytest

from repro.api.sinks import (
    LocalDirSink,
    MemorySink,
    NullSink,
    payload_checksum,
)

SPEC = {"scenario": {"label": "s"}, "value": 8}
PAYLOAD = {"summary": {"mean": 1.5, "trials": 3}}


def filled(sink, count=3):
    for index in range(count):
        sink.store(f"key-{index}", {**SPEC, "value": index}, "trials", PAYLOAD)
    return sink


class TestEnumeration:
    def test_null_sink_is_always_empty(self):
        sink = NullSink()
        sink.store("key-0", SPEC, "trials", PAYLOAD)
        assert sink.keys() == []
        assert "key-0" not in sink
        assert sink.artifact("key-0") is None

    def test_memory_sink_keys_sorted_and_contains(self):
        sink = filled(MemorySink())
        assert sink.keys() == ["key-0", "key-1", "key-2"]
        assert "key-1" in sink and "key-9" not in sink

    def test_local_dir_sink_keys_sorted_and_contains(self, tmp_path):
        sink = filled(LocalDirSink(tmp_path))
        assert sink.keys() == ["key-0", "key-1", "key-2"]
        assert "key-2" in sink and "missing" not in sink

    def test_local_dir_sink_keys_on_missing_directory(self, tmp_path):
        sink = LocalDirSink(tmp_path / "never-created")
        assert sink.keys() == []
        assert "anything" not in sink


class TestArtifactRetrieval:
    @pytest.mark.parametrize(
        "make_sink",
        [lambda tmp: MemorySink(), lambda tmp: LocalDirSink(tmp)],
        ids=["memory", "localdir"],
    )
    def test_artifact_round_trip(self, tmp_path, make_sink):
        sink = filled(make_sink(tmp_path), count=1)
        artifact = sink.artifact("key-0")
        assert sorted(artifact) == ["checksum", "key", "kind", "payload", "spec"]
        assert artifact["key"] == "key-0"
        assert artifact["kind"] == "trials"
        assert artifact["payload"] == PAYLOAD
        assert artifact["checksum"] == payload_checksum(PAYLOAD)
        assert sink.artifact("missing") is None

    def test_memory_artifact_is_a_copy(self):
        sink = filled(MemorySink(), count=1)
        sink.artifact("key-0")["payload"]["summary"]["mean"] = 999.0
        assert sink.artifact("key-0")["payload"] == PAYLOAD

    def test_local_dir_artifact_ignores_torn_file(self, tmp_path):
        sink = LocalDirSink(tmp_path)
        (tmp_path / "torn.json").write_text('{"key": "torn", "pay', encoding="utf-8")
        assert sink.artifact("torn") is None
        assert "torn" in sink.keys()  # present on disk, just not servable


class TestCrashSafeStore:
    def test_mid_write_kill_leaves_no_torn_artifact(self, tmp_path, monkeypatch):
        """A writer dying mid-write must not corrupt the target artifact."""
        sink = LocalDirSink(tmp_path)
        sink.store("key-0", SPEC, "trials", PAYLOAD)
        before = sink.artifact("key-0")

        real_dump = json.dump

        def dying_dump(obj, handle, **kwargs):
            handle.write('{"key": "key-0", "payl')  # partial bytes hit the temp file
            handle.flush()
            raise KeyboardInterrupt("simulated kill mid-write")

        monkeypatch.setattr("repro.api.sinks.json.dump", dying_dump)
        with pytest.raises(KeyboardInterrupt):
            sink.store("key-0", SPEC, "trials", {"summary": {"mean": 9.0}})
        monkeypatch.setattr("repro.api.sinks.json.dump", real_dump)

        # The previous artifact is intact and no temp litter remains.
        assert sink.artifact("key-0") == before
        assert sink.load("key-0", SPEC) == PAYLOAD
        assert list(tmp_path.glob("*.tmp")) == []

    def test_mid_write_kill_on_first_write_leaves_target_absent(
        self, tmp_path, monkeypatch
    ):
        sink = LocalDirSink(tmp_path)

        def dying_dump(obj, handle, **kwargs):
            handle.write("{")
            raise RuntimeError("boom")

        monkeypatch.setattr("repro.api.sinks.json.dump", dying_dump)
        with pytest.raises(RuntimeError):
            sink.store("key-0", SPEC, "trials", PAYLOAD)
        assert not (tmp_path / "key-0.json").exists()
        assert list(tmp_path.glob("*.tmp")) == []
        assert sink.keys() == []

    def test_concurrent_writers_and_readers_never_observe_torn_state(self, tmp_path):
        """Hammer one key from many writer threads while readers verify."""
        sink = LocalDirSink(tmp_path)
        stop = threading.Event()
        problems = []

        def writer(worker):
            for round_ in range(20):
                payload = {"summary": {"mean": float(worker * 100 + round_)}}
                sink.store("shared", SPEC, "trials", payload)

        def reader():
            while not stop.is_set():
                artifact = sink.artifact("shared")
                if artifact is None:
                    continue  # not yet written
                payload = artifact.get("payload")
                if artifact.get("checksum") != payload_checksum(payload):
                    problems.append(artifact)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert problems == []
        final = sink.artifact("shared")
        assert final["checksum"] == payload_checksum(final["payload"])
        assert list(tmp_path.glob("*.tmp")) == []
