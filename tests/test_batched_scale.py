"""Large-scale and sharded-execution contracts of the batched engine.

Three contracts the perf work must not bend:

* at n=10⁴ on G(n, p) — the scale the batch gap was closed at — the batched
  engine still matches the boundary engine *in distribution*, with drop and
  crash faults active simultaneously (z-test on the mean plus a two-sample
  KS bound, as in ``tests/test_batched_engine.py``);
* sharding the trial axis over workers is invisible: ``workers=4`` returns
  bit-identical results to ``workers=1`` (the per-trial spawned-generator
  contract of ``BatchedRumorSpreading.run_batch``);
* the CSR conversion of a static networkx-backed network happens exactly
  once per network object, across repeated batches and across the
  parent-side prewarm that feeds forked workers.
"""

import math
import statistics

import networkx as nx
import numpy as np
import pytest

from repro import api
from repro.api._exec import execute_batched
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.batched import BatchedRumorSpreading
from repro.core.faults import FaultModel
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.csr import CsrSnapshot
from repro.graphs.generators import erdos_renyi_csr


def ks_statistic(a, b):
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


class TestLargeScaleAgreement:
    def test_batched_matches_boundary_on_er_1e4_with_drop_and_crash(self):
        # The exact workload class of the gated benchmark, with both fault
        # families active: drops scale every rate, the scheduled crash clips
        # percolation entries (and excuses the node from completion).  The
        # boundary side is the expensive one (~0.5 s/trial), so it gets a
        # small sample and the batched side a large one; the two-sample
        # criteria below account for the unequal sizes.
        network = StaticDynamicNetwork(erdos_renyi_csr(10_000, 0.00184, rng=7))
        faults = FaultModel(drop_probability=0.2, crash_times={3: 1.0})

        boundary_trials, batched_trials = 16, 128
        boundary_process = AsynchronousRumorSpreading(engine="boundary", faults=faults)
        boundary = [
            boundary_process.run(network, rng=50_000 + s).spread_time
            for s in range(boundary_trials)
        ]
        batched_process = BatchedRumorSpreading(faults=faults)
        batched = [
            r.spread_time
            for r in batched_process.run_batch(network, batched_trials, rng=321)
        ]
        assert all(math.isfinite(t) for t in boundary + batched)

        mean_a, std_a = statistics.fmean(boundary), statistics.stdev(boundary)
        mean_b, std_b = statistics.fmean(batched), statistics.stdev(batched)
        standard_error = math.sqrt(
            std_a**2 / boundary_trials + std_b**2 / batched_trials
        )
        assert abs(mean_a - mean_b) < 5 * standard_error + 0.05
        # KS 1% critical value for unequal samples: 1.628·sqrt((n+m)/(n·m)).
        sizes = (boundary_trials, batched_trials)
        critical = 1.628 * math.sqrt(sum(sizes) / (sizes[0] * sizes[1]))
        assert ks_statistic(boundary, batched) < critical


class TestShardedExecution:
    @staticmethod
    def network():
        return StaticDynamicNetwork(erdos_renyi_csr(400, 0.02, rng=3))

    def test_workers_do_not_change_results(self):
        process = BatchedRumorSpreading()
        times_1, kept_1, n_1 = execute_batched(
            process, self.network(), 8, rng=9, workers=1, keep_results=True
        )
        times_4, kept_4, n_4 = execute_batched(
            process, self.network(), 8, rng=9, workers=4, keep_results=True
        )
        assert times_1 == times_4
        assert n_1 == n_4 == 400
        for res_1, res_4 in zip(kept_1, kept_4):
            assert res_1.informed_times == res_4.informed_times
            assert res_1.completed == res_4.completed

    @pytest.mark.parametrize("workers", [2, 3, 8])
    def test_any_worker_count_matches_unsharded(self, workers):
        process = BatchedRumorSpreading()
        baseline, _, _ = execute_batched(process, self.network(), 7, rng=4, workers=1)
        sharded, _, _ = execute_batched(
            process, self.network(), 7, rng=4, workers=workers
        )
        assert baseline == sharded

    def test_api_builder_sharding_is_invisible(self):
        def spread_times(workers):
            return (
                api.run(network=self.network(), engine="batched", seed=9)
                .trials(8)
                .workers(workers)
                .collect()
                .spread_times
            )

        assert np.array_equal(spread_times(1), spread_times(4))

    def test_more_workers_than_trials(self):
        process = BatchedRumorSpreading()
        baseline, _, _ = execute_batched(process, self.network(), 3, rng=6, workers=1)
        sharded, _, _ = execute_batched(process, self.network(), 3, rng=6, workers=8)
        assert baseline == sharded


class TestSnapshotMemoisation:
    def test_csr_conversion_happens_once_per_network(self, monkeypatch):
        conversions = []
        original = CsrSnapshot.from_networkx.__func__

        def counting(cls, graph, nodes=None, cache_graph=True):
            conversions.append(1)
            return original(cls, graph, nodes=nodes, cache_graph=cache_graph)

        monkeypatch.setattr(CsrSnapshot, "from_networkx", classmethod(counting))
        network = StaticDynamicNetwork(
            nx.gnp_random_graph(60, 0.1, seed=3), precompute_metrics=False
        )
        process = BatchedRumorSpreading()

        execute_batched(process, network, 6, rng=5, workers=1)
        assert len(conversions) == 1
        # Repeated batches, and a sharded batch (the parent-side prewarm),
        # reuse the identity-keyed cache — reset() does not clear it.
        execute_batched(process, network, 6, rng=5, workers=4)
        execute_batched(process, network, 6, rng=5, workers=1)
        assert len(conversions) == 1
        assert network._snapshot is not None
