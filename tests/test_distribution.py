"""Unit tests for the empirical distribution utilities."""

import math

import pytest

from repro.analysis.distribution import (
    EmpiricalDistribution,
    mean_difference_z_score,
    theorem_1_7_iii_tail,
)


class TestEmpiricalDistribution:
    def test_cdf_and_survival(self):
        dist = EmpiricalDistribution.from_samples([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(2.0) == pytest.approx(0.5)
        assert dist.survival(2.0) == pytest.approx(0.5)
        assert dist.cdf(0.5) == 0.0
        assert dist.survival(10.0) == 0.0

    def test_infinite_samples_stay_in_the_tail(self):
        dist = EmpiricalDistribution.from_samples([1.0, math.inf, math.inf, 2.0])
        assert dist.survival(100.0) == pytest.approx(0.5)
        assert dist.finite_mean() == pytest.approx(1.5)

    def test_quantile(self):
        dist = EmpiricalDistribution.from_samples([float(i) for i in range(1, 11)])
        assert dist.quantile(0.1) == 1.0
        assert dist.quantile(0.5) == 5.0
        assert dist.quantile(1.0) == 10.0
        with pytest.raises(ValueError):
            dist.quantile(0.0)

    def test_samples_are_sorted(self):
        dist = EmpiricalDistribution.from_samples([3.0, 1.0, 2.0])
        assert dist.samples == (1.0, 2.0, 3.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution.from_samples([])

    def test_tail_bound_check_passes_when_bound_holds(self):
        dist = EmpiricalDistribution.from_samples([0.5] * 90 + [5.0] * 10)
        violations = dist.exceeds_tail_bound(lambda x: 0.2 if x >= 1 else 1.0, points=[1.0, 2.0])
        assert violations == []

    def test_tail_bound_check_reports_violations(self):
        dist = EmpiricalDistribution.from_samples([5.0] * 10)
        violations = dist.exceeds_tail_bound(lambda x: 0.1, points=[1.0])
        assert len(violations) == 1
        point, empirical, claimed = violations[0]
        assert point == 1.0
        assert empirical == 1.0
        assert claimed == pytest.approx(0.1)

    def test_tail_bound_slack(self):
        dist = EmpiricalDistribution.from_samples([5.0] * 10)
        assert dist.exceeds_tail_bound(lambda x: 0.9, points=[1.0], slack=0.2) == []


class TestZScoreAndTail:
    def test_identical_samples_have_zero_z(self):
        assert mean_difference_z_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(0.0)

    def test_clearly_different_samples_have_large_z(self):
        first = [1.0, 1.1, 0.9, 1.05] * 10
        second = [5.0, 5.1, 4.9, 5.05] * 10
        assert mean_difference_z_score(first, second) > 10

    def test_zero_variance_distinct_means(self):
        assert math.isinf(mean_difference_z_score([1.0, 1.0], [2.0, 2.0]))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            mean_difference_z_score([1.0], [1.0, 2.0])

    def test_theorem_1_7_iii_tail(self):
        assert theorem_1_7_iii_tail(0.0) == 1.0
        assert theorem_1_7_iii_tail(4.0) == pytest.approx(math.exp(-2) + math.exp(-4))
        assert theorem_1_7_iii_tail(20.0) < 1e-4
        with pytest.raises(ValueError):
            theorem_1_7_iii_tail(-1.0)
