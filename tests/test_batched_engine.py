"""The trial-batched engine agrees with the boundary engine in distribution.

The batched engine vectorises many boundary races into ``(trials, n)``
arrays; it deliberately consumes a different random stream, so the contract
is *distributional* equivalence, checked KS-style over spread times: the same
two-sample criterion the boundary/naive integration tests use (z-test on the
mean plus an empirical-CDF distance bound), including the closed-form clique
path, the general blocked path, and both fault families.
"""

import math
import statistics

import numpy as np
import pytest

from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.batched import BatchedRumorSpreading, batched_supported
from repro.core.faults import FaultModel
from repro.core.variants import Variant
from repro.dynamics.dichotomy import DynamicStarNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, cycle, path, star

TRIALS = 150


def boundary_times(factory, trials, seed_base, **process_kwargs):
    process = AsynchronousRumorSpreading(engine="boundary", **process_kwargs)
    return [process.run(factory(), rng=seed_base + s).spread_time for s in range(trials)]


def batched_times(factory, trials, seed, **process_kwargs):
    process = BatchedRumorSpreading(**process_kwargs)
    return [r.spread_time for r in process.run_batch(factory(), trials, rng=seed)]


def ks_statistic(a, b):
    """Two-sample Kolmogorov–Smirnov statistic (hand-rolled; no scipy)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def assert_distributions_agree(times_a, times_b):
    trials = len(times_a)
    mean_a, std_a = statistics.fmean(times_a), statistics.stdev(times_a)
    mean_b, std_b = statistics.fmean(times_b), statistics.stdev(times_b)
    standard_error = math.sqrt(std_a**2 / trials + std_b**2 / trials)
    assert abs(mean_a - mean_b) < 5 * standard_error + 0.05
    # KS 1% critical value for equal samples: 1.628·sqrt(2/trials).
    assert ks_statistic(times_a, times_b) < 1.628 * math.sqrt(2.0 / trials)


class TestDistributionAgreement:
    @pytest.mark.parametrize(
        "name,factory",
        [
            ("clique8", lambda: StaticDynamicNetwork(clique(range(8)))),
            ("path6", lambda: StaticDynamicNetwork(path(range(6)))),
            ("star7", lambda: StaticDynamicNetwork(star(0, range(1, 7)))),
        ],
    )
    def test_agrees_on_fault_free_networks(self, name, factory):
        assert_distributions_agree(
            boundary_times(factory, TRIALS, 10_000),
            batched_times(factory, TRIALS, 99),
        )

    @pytest.mark.parametrize(
        "name,faults",
        [
            ("drops", FaultModel(drop_probability=0.3)),
            ("initial_crash", FaultModel(crashed_nodes=frozenset({3}))),
            ("scheduled_crash", FaultModel(crash_times={3: 0.75, 5: 1.5})),
            ("drops_and_crash", FaultModel(drop_probability=0.2, crash_times={4: 1.0})),
        ],
    )
    def test_agrees_under_faults(self, name, faults):
        factory = lambda: StaticDynamicNetwork(clique(range(8)))
        assert_distributions_agree(
            boundary_times(factory, TRIALS, 30_000, faults=faults),
            batched_times(factory, TRIALS, 77, faults=faults),
        )

    def test_agrees_for_push_only_variant(self):
        factory = lambda: StaticDynamicNetwork(cycle(range(7)))
        assert_distributions_agree(
            boundary_times(factory, TRIALS, 1, variant=Variant.PUSH),
            batched_times(factory, TRIALS, 2, variant=Variant.PUSH),
        )

    def test_clique_closed_form_agrees_with_general_path(self):
        # A vanishing scheduled crash (on an already-down node) forces the
        # general path on the same clique the closed form would take, so the
        # two batched code paths check each other directly.
        factory = lambda: StaticDynamicNetwork(clique(range(9)))
        closed = batched_times(factory, TRIALS, 5)
        general = batched_times(
            factory,
            TRIALS,
            6,
            faults=FaultModel(crash_times={0: 10_000.0}),
        )
        assert_distributions_agree(closed, general)


class TestBatchedSemantics:
    def test_initially_crashed_node_never_informed(self):
        faults = FaultModel(crashed_nodes=frozenset({2}))
        process = BatchedRumorSpreading(faults=faults)
        for result in process.run_batch(
            StaticDynamicNetwork(clique(range(6))), 20, rng=11
        ):
            assert result.completed
            assert 2 not in result.informed_times
            assert set(result.informed_times) == {0, 1, 3, 4, 5}

    def test_scheduled_crash_cuts_off_late_informs(self):
        faults = FaultModel(crash_times={4: 0.2})
        process = BatchedRumorSpreading(faults=faults)
        for result in process.run_batch(
            StaticDynamicNetwork(clique(range(8))), 40, rng=5
        ):
            informed_at = result.informed_times.get(4)
            assert informed_at is None or informed_at < 0.2

    def test_time_limit_censors_runs(self):
        process = BatchedRumorSpreading()
        results = process.run_batch(
            StaticDynamicNetwork(path(range(30))), 10, rng=3, max_time=0.5
        )
        for result in results:
            if not result.completed:
                assert result.spread_time == math.inf
                assert result.steps_used == 1  # ceil(0.5)
                assert all(t < 0.5 for t in result.informed_times.values())

    def test_deterministic_for_fixed_seed(self):
        factory = lambda: StaticDynamicNetwork(clique(range(12)))
        a = batched_times(factory, 10, 42)
        b = batched_times(factory, 10, 42)
        assert a == b

    def test_single_node_network(self):
        results = BatchedRumorSpreading().run_batch(
            StaticDynamicNetwork(clique(range(1))), 3, rng=1
        )
        for result in results:
            assert result.completed
            assert result.spread_time == 0.0
            assert result.steps_used == 1
            assert result.informed_times == {0: 0.0}

    def test_disconnected_network_times_out(self):
        graph = path(range(3))
        graph.add_node("island")
        results = BatchedRumorSpreading().run_batch(
            StaticDynamicNetwork(graph), 5, rng=4, max_time=10.0
        )
        for result in results:
            assert not result.completed
            assert result.spread_time == math.inf
            assert "island" not in result.informed_times

    def test_steps_used_matches_boundary_convention(self):
        for result in BatchedRumorSpreading().run_batch(
            StaticDynamicNetwork(clique(range(10))), 20, rng=8
        ):
            assert result.completed
            assert result.steps_used == int(math.floor(result.spread_time)) + 1
            assert result.events == result.informed_count - 1

    def test_run_adapter_matches_process_protocol(self):
        result = BatchedRumorSpreading().run(
            StaticDynamicNetwork(clique(range(10))), rng=7
        )
        assert result.completed and result.informed_count == 10

    def test_run_rejects_streaming_hooks(self):
        process = BatchedRumorSpreading()
        network = StaticDynamicNetwork(clique(range(5)))
        with pytest.raises(ValueError, match="observer"):
            process.run(network, rng=1, observer=object())
        with pytest.raises(ValueError, match="observer"):
            process.run(network, rng=1, recorder=object())

    def test_requires_static_network(self):
        assert batched_supported(DynamicStarNetwork(6)) is not None
        assert batched_supported(StaticDynamicNetwork(clique(range(4)))) is None
        with pytest.raises(ValueError, match="static"):
            BatchedRumorSpreading().run_batch(DynamicStarNetwork(6), 2, rng=1)
