"""Unit tests for the shared utilities (rng plumbing, validation)."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs
from repro.utils.validation import (
    require,
    require_int_in_range,
    require_node_count,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestEnsureRng:
    def test_none_gives_a_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        first = ensure_rng(42).random(3)
        second = ensure_rng(42).random(3)
        assert np.allclose(first, second)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = ensure_rng(np.random.SeedSequence(7))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_input_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count_and_independence(self):
        generators = spawn_rngs(0, 4)
        assert len(generators) == 4
        draws = [gen.random() for gen in generators]
        assert len(set(draws)) == 4

    def test_reproducible_from_integer_seed(self):
        first = [gen.random() for gen in spawn_rngs(5, 3)]
        second = [gen.random() for gen in spawn_rngs(5, 3)]
        assert first == second

    def test_spawning_from_generator(self):
        gen = np.random.default_rng(3)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_is_int(self):
        assert isinstance(derive_seed(0, salt=3), int)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(0.5, "x")
        with pytest.raises(ValueError):
            require_positive(0, "x")
        with pytest.raises(TypeError):
            require_positive("3", "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")

    def test_require_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ValueError):
            require_probability(1.01, "p")

    def test_require_node_count(self):
        require_node_count(5)
        with pytest.raises(ValueError):
            require_node_count(0)
        with pytest.raises(TypeError):
            require_node_count(2.5)
        with pytest.raises(TypeError):
            require_node_count(True)

    def test_require_int_in_range(self):
        require_int_in_range(3, 1, 5, "k")
        with pytest.raises(ValueError):
            require_int_in_range(9, 1, 5, "k")
        with pytest.raises(TypeError):
            require_int_in_range(2.0, 1, 5, "k")
