"""Tests for the benchmark delta tool's regression gate."""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_delta.py"
_spec = importlib.util.spec_from_file_location("bench_delta", _MODULE_PATH)
bench_delta = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_delta)


def _write(path, means):
    document = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}} for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(document))
    return str(path)


@pytest.fixture
def files(tmp_path):
    baseline = _write(tmp_path / "baseline.json", {"hot": 0.100, "cold": 0.050})
    current = _write(tmp_path / "current.json", {"hot": 0.150, "cold": 0.049})
    return baseline, current


class TestBenchDelta:
    def test_informational_without_gate(self, files, capsys):
        baseline, current = files
        assert bench_delta.main(["bench_delta.py", baseline, current]) == 0
        out = capsys.readouterr().out
        assert "hot" in out and "+50.0%" in out

    def test_gate_fails_on_regression_beyond_threshold(self, files, capsys):
        baseline, current = files
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "hot", "--threshold", "30"]
        )
        assert code == 1
        assert "regressed +50.0%" in capsys.readouterr().err

    def test_gate_passes_within_threshold(self, files, capsys):
        baseline, current = files
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "hot", "--threshold", "60"]
        )
        assert code == 0
        assert "gate OK" in capsys.readouterr().out

    def test_ungated_regression_does_not_fail(self, files):
        baseline, current = files
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "cold", "--threshold", "30"]
        )
        assert code == 0

    def test_gate_glob_matches_multiple(self, files):
        baseline, current = files
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "*", "--threshold", "30"]
        )
        assert code == 1

    def test_unmatched_gate_pattern_warns_and_skips(self, files, capsys):
        baseline, current = files
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "renamed_benchmark"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "WARN" in err and "matched no benchmark on either side" in err

    def test_gate_on_one_sided_benchmark_warns_and_skips(self, tmp_path, capsys):
        # A benchmark present only in the current run (just added, baseline
        # not yet refreshed) must not fail its gate — only warn.
        baseline = _write(tmp_path / "baseline.json", {"hot": 0.100})
        current = _write(tmp_path / "current.json", {"hot": 0.101, "huge_new": 9.0})
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "hot", "--gate", "huge_new"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "WARN" in captured.err and "huge_new" in captured.err
        assert "only unshared" in captured.err
        assert "gate OK" in captured.out  # the shared gate still passes

    def test_one_sided_warning_does_not_mask_real_regression(self, tmp_path, capsys):
        baseline = _write(tmp_path / "baseline.json", {"hot": 0.100})
        current = _write(tmp_path / "current.json", {"hot": 0.200, "huge_new": 9.0})
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "hot", "--gate", "huge_new"]
        )
        assert code == 1
        assert "regressed" in capsys.readouterr().err


class TestBenchDeltaJson:
    def test_json_document_matches_table(self, files, tmp_path):
        baseline, current = files
        out_path = tmp_path / "delta.json"
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "hot",
             "--threshold", "60", "--json", str(out_path)]
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["ok"] is True
        assert document["failures"] == []
        assert document["threshold_pct"] == 60.0
        hot = document["benchmarks"]["hot"]
        assert hot["baseline_s"] == pytest.approx(0.100)
        assert hot["current_s"] == pytest.approx(0.150)
        assert hot["delta_pct"] == pytest.approx(50.0)
        assert hot["gated"] is True
        assert document["benchmarks"]["cold"]["gated"] is False

    def test_json_records_failures_and_one_sided_names(self, tmp_path):
        baseline = _write(tmp_path / "baseline.json", {"hot": 0.100, "gone": 1.0})
        current = _write(tmp_path / "current.json", {"hot": 0.200, "fresh": 2.0})
        out_path = tmp_path / "delta.json"
        code = bench_delta.main(
            ["bench_delta.py", baseline, current, "--gate", "hot",
             "--json", str(out_path)]
        )
        assert code == 1
        document = json.loads(out_path.read_text())
        assert document["ok"] is False
        assert len(document["failures"]) == 1 and "hot" in document["failures"][0]
        assert document["only_in_baseline"] == ["gone"]
        assert document["only_in_current"] == ["fresh"]

    def test_json_to_stdout(self, files, capsys):
        baseline, current = files
        code = bench_delta.main(["bench_delta.py", baseline, current, "--json", "-"])
        assert code == 0
        out = capsys.readouterr().out
        document = json.loads(out[out.index("{"):])
        assert set(document["benchmarks"]) == {"hot", "cold"}
