"""Unit tests for the paper's bounds (Theorems 1.1, 1.3, Corollary 1.6)."""

import math

import pytest

from repro.bounds.theorems import (
    C_CONSTANT_FACTOR,
    SPREAD_CONSTANT_C0,
    absolute_diligence_bound,
    bounds_from_recorder,
    combined_bound,
    conductance_diligence_bound,
    static_conductance_bound,
    theorem_1_1_threshold,
    theorem_1_3_threshold,
    universal_quadratic_bound,
)
from repro.dynamics.base import SnapshotRecorder
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import star


class TestConstants:
    def test_c0_value(self):
        assert SPREAD_CONSTANT_C0 == pytest.approx(0.5 - 1 / math.e)

    def test_C_factor_formula(self):
        assert C_CONSTANT_FACTOR(1.0) == pytest.approx(30 / SPREAD_CONSTANT_C0)
        assert C_CONSTANT_FACTOR(2.0) == pytest.approx(40 / SPREAD_CONSTANT_C0)

    def test_C_factor_rejects_nonpositive_c(self):
        with pytest.raises(ValueError):
            C_CONSTANT_FACTOR(0.0)

    def test_thresholds(self):
        assert theorem_1_1_threshold(100) == pytest.approx(C_CONSTANT_FACTOR(1.0) * math.log(100))
        assert theorem_1_3_threshold(100) == 200.0


class TestTheorem11Bound:
    def test_constant_series_reaches_threshold(self):
        n = 64
        phi_rho = 0.5
        steps = int(math.ceil(theorem_1_1_threshold(n) / phi_rho)) + 5
        evaluation = conductance_diligence_bound([0.5] * steps, [1.0] * steps, n)
        assert evaluation.reached
        assert evaluation.bound == pytest.approx(math.ceil(theorem_1_1_threshold(n) / 0.5) - 1, abs=1)

    def test_short_series_does_not_reach(self):
        evaluation = conductance_diligence_bound([0.5] * 3, [1.0] * 3, 64)
        assert not evaluation.reached
        assert math.isinf(evaluation.bound)

    def test_zero_steps_contribute_nothing(self):
        n = 32
        with_zeros = conductance_diligence_bound([0.0, 1.0] * 4000, [1.0, 1.0] * 4000, n)
        without = conductance_diligence_bound([1.0] * 4000, [1.0] * 4000, n)
        assert with_zeros.bound == pytest.approx(2 * without.bound + 1, abs=2)

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conductance_diligence_bound([0.5], [1.0, 1.0], 32)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            conductance_diligence_bound([-0.5] * 10, [1.0] * 10, 32)


class TestTheorem13Bound:
    def test_connected_unit_diligence_series(self):
        n = 16
        evaluation = absolute_diligence_bound([1] * 100, [1.0] * 100, n)
        assert evaluation.reached
        assert evaluation.bound == pytest.approx(2 * n - 1)

    def test_disconnected_steps_are_skipped(self):
        n = 16
        indicators = [0, 1] * 200
        evaluation = absolute_diligence_bound(indicators, [1.0] * 400, n)
        assert evaluation.reached
        assert evaluation.bound == pytest.approx(2 * (2 * n) - 1, abs=2)

    def test_invalid_indicator_rejected(self):
        with pytest.raises(ValueError):
            absolute_diligence_bound([2], [1.0], 16)

    def test_universal_quadratic_bound(self):
        assert universal_quadratic_bound(10) == pytest.approx(180.0)
        # It equals T_abs for a connected sequence at the worst-case diligence.
        n = 10
        steps = int(universal_quadratic_bound(n)) + 2
        evaluation = absolute_diligence_bound([1] * steps, [1 / (n - 1)] * steps, n)
        assert evaluation.reached
        assert evaluation.bound <= universal_quadratic_bound(n)


class TestCombinedAndStatic:
    def test_combined_bound_takes_the_minimum(self):
        n = 16
        steps = 4000
        value = combined_bound(
            [0.01] * steps, [0.01] * steps, [1] * steps, [1.0] * steps, n
        )
        only_abs = absolute_diligence_bound([1] * steps, [1.0] * steps, n)
        assert value == only_abs.bound

    def test_static_conductance_bound(self):
        assert static_conductance_bound(100, 0.5) == pytest.approx(2 * math.log(100))
        with pytest.raises(ValueError):
            static_conductance_bound(100, 0.0)

    def test_bounds_from_recorder(self):
        network = StaticDynamicNetwork(star(0, range(1, 10)))
        recorder = SnapshotRecorder()
        network.reset(0)
        steps = 2 * 10 + int(theorem_1_1_threshold(10)) + 5
        for t in range(steps):
            graph = network.graph_for_step(t, frozenset())
            recorder.record(network, t, graph, informed_count=1)
        bundle = bounds_from_recorder(recorder, 10)
        assert bundle["theorem_1_3"].reached
        assert bundle["corollary_1_6"] == min(
            bundle["theorem_1_1"].bound, bundle["theorem_1_3"].bound
        )
