"""Observer-event ordering tests on both engines (sync and async, with faults).

The streaming observer protocol is part of the public contract: progress
bars, live metrics and early stopping all assume the hooks arrive in a
well-defined order.  These tests pin that order down on the boundary engine,
the naive engine and the synchronous engine — including under scheduled
crash faults — and check that the builder's trial-level hook wraps them
coherently.
"""

import math

import pytest

from repro import api
from repro.core.faults import FaultModel


def _event_log_for(algorithm="async", engine="boundary", faults=None, n=16, network="clique"):
    log = api.EventLog()
    builder = api.run(network=network, n=n, algorithm=algorithm, seed=5).observe(log)
    if algorithm == "async":
        builder = builder.engine(engine)
    if faults is not None:
        builder = builder.faults(faults)
    result = builder.once()
    return log, result


class TestAsyncOrdering:
    @pytest.mark.parametrize("engine", ["boundary", "naive"])
    def test_event_times_nondecreasing_and_complete_last(self, engine):
        log, result = _event_log_for(engine=engine)
        kinds = [event[0] for event in log.events]
        assert kinds[0] == "snapshot", "the initial snapshot is observed first"
        # on_complete arrives exactly once, after everything the engine emits.
        assert kinds.count("complete") == 1
        assert kinds.index("complete") == len(kinds) - 2  # builder appends on_trial
        assert kinds[-1] == "trial"
        times = [event[1] for event in log.of_kind("event")]
        assert times == sorted(times)
        assert result.completed

    @pytest.mark.parametrize("engine", ["boundary", "naive"])
    def test_informed_counts_increment_by_one(self, engine):
        log, result = _event_log_for(engine=engine)
        counts = [event[3] for event in log.of_kind("event")]
        assert counts == list(range(2, 2 + len(counts)))
        assert len(counts) == result.n - 1  # everyone beyond the source

    @pytest.mark.parametrize("engine", ["boundary", "naive"])
    def test_snapshot_steps_strictly_increase(self, engine):
        log, _ = _event_log_for(engine=engine)
        steps = [event[1] for event in log.of_kind("snapshot")]
        assert steps == sorted(set(steps))
        assert steps[0] == 0

    @pytest.mark.parametrize("engine", ["boundary", "naive"])
    def test_crash_faults_keep_ordering_and_skip_crashed_nodes(self, engine):
        faults = FaultModel(crashed_nodes=frozenset({3}), crash_times={5: 0.4})
        log, result = _event_log_for(engine=engine, faults=faults)
        assert result.completed
        informed_nodes = {event[2] for event in log.of_kind("event")}
        assert 3 not in informed_nodes
        times = [event[1] for event in log.of_kind("event")]
        assert times == sorted(times)
        # node 5 can only have been informed before its crash time
        for _, time, node, _ in log.of_kind("event"):
            if node == 5:
                assert time < 0.4

    def test_events_interleave_between_snapshots_in_time_order(self):
        # edge-markovian changes snapshots every unit of time, so events and
        # snapshots interleave; reconstruct the global time order and check it.
        log = api.EventLog()
        (
            api.run(network="edge-markovian", n=12, birth=0.4, death=0.2, seed=9)
            .network_seed(1)
            .observe(log)
            .once()
        )
        clock = []
        for event in log.events:
            if event[0] == "snapshot":
                clock.append(float(event[1]))
            elif event[0] == "event":
                clock.append(event[1])
        assert clock == sorted(clock)


class TestSyncOrdering:
    def test_rounds_and_events_are_coherent(self):
        log, result = _event_log_for(algorithm="sync")
        rounds = [event[1] for event in log.of_kind("round")]
        assert rounds == list(range(1, len(rounds) + 1))
        # each informing event carries the round it happened in
        round_of_events = [event[1] for event in log.of_kind("event")]
        assert all(float(r) in {float(x) for x in rounds} for r in round_of_events)
        assert log.events[-2][0] == "complete" and log.events[-1][0] == "trial"
        assert result.completed

    def test_sync_crash_faults_ordering(self):
        faults = {"crash_times": {2: 1}}
        log, result = _event_log_for(algorithm="sync", faults=faults)
        assert result.completed
        # node 2 may only be informed in round 1 (it crashes from round 1 on,
        # and informing during round 0 is recorded at time 1)
        for _, time, node, _ in log.of_kind("event"):
            if node == 2:
                assert time <= 1.0
        counts = [event[2] for event in log.of_kind("round")]
        assert counts == sorted(counts), "informed count never decreases"

    def test_snapshot_per_round(self):
        log, result = _event_log_for(algorithm="sync", network="cycle")
        snapshots = [event[1] for event in log.of_kind("snapshot")]
        rounds = [event[1] for event in log.of_kind("round")]
        assert snapshots == list(range(len(rounds)))


class TestTrialLevelHooks:
    def test_on_trial_fires_per_trial_in_order(self):
        log = api.EventLog()
        trial_set = (
            api.run(network="clique", n=10, seed=2).observe(log).trials(4).collect()
        )
        trial_events = log.of_kind("trial")
        assert [event[1] for event in trial_events] == [0, 1, 2, 3]
        assert [event[2] for event in trial_events] == [
            float(t) for t in trial_set.spread_times
        ]
        # engine-level completes interleave one per trial on the serial path
        assert len(log.of_kind("complete")) == 4

    def test_observer_chain_fans_out(self):
        first, second = api.EventLog(), api.EventLog()
        api.run(network="clique", n=8, seed=1).observe(first, second).once()
        assert first.events == second.events
        assert first.events, "hooks actually fired"

    def test_parallel_workers_replay_on_trial_in_parent(self):
        log = api.EventLog()
        trial_set = (
            api.run(network="clique", n=10, seed=2)
            .observe(log)
            .trials(4)
            .workers(2)
            .collect()
        )
        trial_events = log.of_kind("trial")
        assert [event[1] for event in trial_events] == [0, 1, 2, 3]
        assert [event[2] for event in trial_events] == [
            float(t) for t in trial_set.spread_times
        ]

    def test_workers_do_not_change_spread_times(self):
        serial = api.run(network="clique", n=12, seed=7).trials(6).collect()
        parallel = (
            api.run(network="clique", n=12, seed=7).trials(6).workers(2).collect()
        )
        assert [float(t) for t in serial.spread_times] == [
            float(t) for t in parallel.spread_times
        ]


class TestAdaptiveStopping:
    def test_ci_width_rule_stops_early(self):
        wide = api.run(network="clique", n=16, seed=3).trials(
            until_ci_width=math.inf, max_trials=50
        )
        trial_set = wide.collect()
        # an infinite target is satisfied as soon as a width exists (2 trials)
        assert trial_set.trials == 2

    def test_adaptive_results_are_prefix_of_fixed_run(self):
        adaptive = (
            api.run(network="clique", n=16, seed=3)
            .trials(until_ci_width=0.5, max_trials=30)
            .collect()
        )
        fixed = api.run(network="clique", n=16, seed=3).trials(30).collect()
        assert 2 <= adaptive.trials <= 30
        assert [float(t) for t in adaptive.spread_times] == [
            float(t) for t in fixed.spread_times[: adaptive.trials]
        ]

    def test_adaptive_honours_max_trials(self):
        trial_set = (
            api.run(network="clique", n=16, seed=3)
            .trials(until_ci_width=1e-12, max_trials=5)
            .collect()
        )
        assert trial_set.trials == 5

    def test_adaptive_requires_budget(self):
        with pytest.raises(ValueError, match="max_trials"):
            api.run(network="clique", n=16).trials(until_ci_width=0.5).collect()
