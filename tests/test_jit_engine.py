"""The jit engine: boundary-equivalent in distribution, numba-optional.

``engine="jit"`` runs the boundary race through the extracted segment kernel
of :mod:`repro.core.kernels`.  Its contracts:

* distribution agreement with the boundary engine (same z-style criterion
  the boundary/naive integration tests use), including faults;
* bit-identical results between the dispatched kernel and the
  always-interpreted reference for fixed seeds — trivially true when numba
  is absent (same function object) and verified for real when it is
  installed (the CI optional-deps job runs this file with numba);
* observer hooks replayed from the kernel's event log in boundary order.
"""

import math
import statistics

import pytest

from repro.core import kernels
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.faults import FaultModel
from repro.dynamics.dichotomy import DynamicStarNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, path


def mean_and_std(process, factory, trials, seed_base):
    times = [process.run(factory(), rng=seed_base + s).spread_time for s in range(trials)]
    return statistics.fmean(times), statistics.stdev(times)


class TestJitAgreement:
    @pytest.mark.parametrize(
        "name,factory,faults",
        [
            ("path6", lambda: StaticDynamicNetwork(path(range(6))), None),
            ("dynstar6", lambda: DynamicStarNetwork(6), None),
            (
                "clique8_drops",
                lambda: StaticDynamicNetwork(clique(range(8))),
                FaultModel(drop_probability=0.3),
            ),
            (
                "clique8_crash",
                lambda: StaticDynamicNetwork(clique(range(8))),
                FaultModel(crash_times={3: 0.75, 5: 1.5}),
            ),
        ],
    )
    def test_agrees_with_boundary(self, name, factory, faults):
        trials = 150
        kwargs = {"faults": faults} if faults is not None else {}
        boundary = AsynchronousRumorSpreading(engine="boundary", **kwargs)
        jit = AsynchronousRumorSpreading(engine="jit", **kwargs)
        mean_b, std_b = mean_and_std(boundary, factory, trials, 10_000)
        mean_j, std_j = mean_and_std(jit, factory, trials, 20_000)
        standard_error = math.sqrt(std_b**2 / trials + std_j**2 / trials)
        assert abs(mean_b - mean_j) < 5 * standard_error + 0.05


class TestJitDeterminism:
    def test_reproducible_for_fixed_seed(self):
        process = AsynchronousRumorSpreading(engine="jit")
        first = process.run(StaticDynamicNetwork(clique(range(12))), rng=42)
        second = process.run(StaticDynamicNetwork(clique(range(12))), rng=42)
        assert first.spread_time == second.spread_time
        assert first.informed_times == second.informed_times

    def test_kernel_bit_identical_to_reference(self, monkeypatch):
        """Dispatched kernel == interpreted reference, bit for bit.

        When numba is absent the two names are the same function and this is
        a tautology; with numba installed (CI optional-deps job) it checks
        the compiled kernel reproduces the CPython fallback exactly — the
        randomness is pre-drawn outside the kernel and the kernel restricts
        itself to order-stable accumulation, so any divergence is a bug.
        """
        process = AsynchronousRumorSpreading(
            engine="jit", faults=FaultModel(drop_probability=0.2, crash_times={4: 1.0})
        )
        factory = lambda: StaticDynamicNetwork(clique(range(15)))
        dispatched = [process.run(factory(), rng=s).spread_time for s in range(8)]
        monkeypatch.setattr(
            kernels, "boundary_segment", kernels.boundary_segment_reference
        )
        reference = [process.run(factory(), rng=s).spread_time for s in range(8)]
        assert dispatched == reference  # exact float equality, not approx

    def test_have_numba_flag_matches_import(self):
        try:
            import numba  # noqa: F401

            assert kernels.HAVE_NUMBA
        except ImportError:
            assert not kernels.HAVE_NUMBA
            assert kernels.boundary_segment is kernels.boundary_segment_reference


class TestJitObserverReplay:
    def test_events_replayed_in_boundary_order(self):
        class Recorder:
            def __init__(self):
                self.events = []
                self.snapshots = []
                self.completed = None

            def on_snapshot(self, step, snapshot, informed_count):
                self.snapshots.append((step, informed_count))

            def on_event(self, time, node, informed_count):
                self.events.append((time, node, informed_count))

            def on_round(self, round_index, informed_count):
                raise AssertionError("asynchronous engines never emit rounds")

            def on_complete(self, result):
                self.completed = result

            def on_trial(self, index, result):
                pass

        observer = Recorder()
        result = AsynchronousRumorSpreading(engine="jit").run(
            StaticDynamicNetwork(clique(range(9))), rng=5, observer=observer
        )
        times = [time for time, _node, _count in observer.events]
        counts = [count for _time, _node, count in observer.events]
        assert times == sorted(times)
        assert counts == list(range(2, len(observer.events) + 2))
        assert observer.completed is result
        assert observer.snapshots[0] == (0, 1)
        assert len(observer.events) == result.informed_count - 1

    def test_crashed_node_semantics_match_boundary(self):
        faults = FaultModel(crashed_nodes=frozenset({2}))
        result = AsynchronousRumorSpreading(engine="jit", faults=faults).run(
            StaticDynamicNetwork(clique(range(6))), rng=11
        )
        assert result.completed
        assert 2 not in result.informed_times
        assert set(result.informed_times) == {0, 1, 3, 4, 5}
