"""Tests for the declarative result-analytics subsystem (``repro.checks``).

Covers the dict/JSON round-trip contract of :class:`Check` tables (property
based, like the Scenario round-trip), the evaluator semantics of every check
kind in both the passing and the failing direction, the dataset coercions,
the scenario attachment, the CLI ``verify`` gate, and a regression test that
the declarative E1–E9 tables reproduce the seed report's verdicts
byte-for-byte in ``--json`` output.
"""

import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks import (
    CHECK_KINDS,
    Check,
    CheckDataset,
    CheckReport,
    CheckResult,
    checks_from_data,
    checks_to_data,
    evaluate_check,
    evaluate_checks,
    rows_from_points,
)
from repro.cli import main
from repro.experiments.result import ExperimentResult
from repro.scenarios import Scenario

# ---------------------------------------------------------------------------
# property-based round trip
# ---------------------------------------------------------------------------

_labels = st.text(min_size=1, max_size=20)
_columns = st.sampled_from(["mean", "whp", "bound", "n", "ok", "ratio"])
_finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
_against = st.one_of(_columns, _finite, st.integers(-100, 100))
_where = st.sampled_from(
    [{}, {"network": "G2"}, {"rho": {"exists": True}}, {"quantity": {"exists": False}}]
)


@st.composite
def checks_strategy(draw):
    kind = draw(st.sampled_from(CHECK_KINDS))
    kwargs = {
        "label": draw(_labels),
        "kind": kind,
        "where": draw(_where),
        "strict": draw(st.booleans()),
        "require_rows": draw(st.integers(0, 3)),
    }
    if kind in ("upper_bound", "lower_bound"):
        kwargs.update(
            column=draw(_columns),
            against=draw(_against),
            scale=draw(st.floats(0.1, 10.0)),
            offset=draw(st.floats(-10.0, 10.0)),
            transform=draw(st.sampled_from([None, "log", "log2", "sqrt"])),
            non_finite=draw(st.sampled_from(["fail", "skip"])),
        )
    elif kind == "log_slope":
        low = draw(st.floats(-2.0, 2.0))
        kwargs.update(
            column=draw(_columns),
            x=draw(_columns),
            low=low,
            high=draw(st.one_of(st.none(), st.floats(low, low + 4.0))),
            insufficient=draw(st.sampled_from(["pass", "fail"])),
        )
    elif kind == "monotonic":
        kwargs.update(
            column=draw(_columns),
            x=draw(st.one_of(st.none(), _columns)),
            direction=draw(st.sampled_from(["increasing", "decreasing"])),
            non_finite=draw(st.sampled_from(["fail", "skip"])),
        )
    elif kind == "ratio_between":
        low = draw(st.floats(0.01, 1.0))
        kwargs.update(
            column=draw(_columns),
            against=draw(_columns),
            low=low,
            high=draw(st.floats(low, low + 10.0)),
        )
    elif kind == "ci_width":
        kwargs.update(
            high=draw(st.floats(0.1, 100.0)),
            z=draw(st.floats(0.5, 4.0)),
        )
    elif kind == "all_true":
        kwargs.update(column=draw(_columns))
    elif kind == "equals":
        kwargs.update(
            column=draw(_columns),
            against=draw(_against),
            tolerance=draw(st.floats(0.0, 1.0)),
        )
    return Check(**kwargs)


class TestCheckRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(check=checks_strategy())
    def test_dict_round_trip(self, check):
        assert Check.from_dict(check.to_dict()) == check

    @settings(max_examples=100, deadline=None)
    @given(check=checks_strategy())
    def test_json_round_trip(self, check):
        assert Check.from_json(check.to_json()) == check
        json.loads(check.to_json())  # strictly valid JSON

    @settings(max_examples=30, deadline=None)
    @given(table=st.lists(checks_strategy(), min_size=0, max_size=4))
    def test_table_round_trip(self, table):
        assert checks_from_data(checks_to_data(table)) == tuple(table)


class TestCheckValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Check(label="x", kind="psychic", column="mean")

    def test_bound_kind_needs_against(self):
        with pytest.raises(ValueError, match="against"):
            Check(label="x", kind="upper_bound", column="mean")

    def test_log_slope_needs_x(self):
        with pytest.raises(ValueError, match="x column"):
            Check(label="x", kind="log_slope", column="mean", low=0.0)

    def test_band_order_enforced(self):
        with pytest.raises(ValueError, match="low"):
            Check(label="x", kind="ratio_between", column="a", against="b",
                  low=2.0, high=1.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown check field"):
            Check.from_dict({"label": "x", "kind": "all_true", "column": "ok",
                             "severity": "high"})

    def test_derived_source_rejects_where(self):
        with pytest.raises(ValueError, match="derived"):
            Check(label="x", kind="upper_bound", column="slope", against=1.0,
                  source="derived", where={"network": "G1"})


# ---------------------------------------------------------------------------
# evaluator semantics, every kind in both directions
# ---------------------------------------------------------------------------

_ROWS = [
    {"net": "a", "n": 32, "mean": 10.0, "whp": 12.0, "bound": 20.0, "ok": True},
    {"net": "a", "n": 64, "mean": 21.0, "whp": 24.0, "bound": 25.0, "ok": True},
    {"net": "b", "n": 64, "mean": 40.0, "whp": 50.0, "bound": 45.0, "ok": False},
]


class TestEvaluatorKinds:
    def test_upper_bound_pass_and_fail(self):
        passing = evaluate_check(
            Check(label="u", kind="upper_bound", column="mean", against="bound"),
            rows=_ROWS[:2],
        )
        assert passing.passed and passing.margin == pytest.approx(4.0)
        failing = evaluate_check(
            Check(label="u", kind="upper_bound", column="whp", against="bound"),
            rows=_ROWS,
        )
        assert not failing.passed
        assert failing.observed == pytest.approx(50.0)
        assert failing.margin == pytest.approx(-5.0)

    def test_upper_bound_scale_offset_and_transform(self):
        # bound = 10 * log(n): mean 21 < 10 log(64) ~ 41.6
        result = evaluate_check(
            Check(label="log", kind="upper_bound", column="mean", against="n",
                  transform="log", scale=10.0, strict=True),
            rows=_ROWS[:2],
        )
        assert result.passed
        result = evaluate_check(
            Check(label="log", kind="upper_bound", column="mean", against="n",
                  transform="log", scale=0.1, strict=True),
            rows=_ROWS[:2],
        )
        assert not result.passed

    def test_lower_bound_pass_fail_and_skip(self):
        assert evaluate_check(
            Check(label="l", kind="lower_bound", column="mean", against=5.0),
            rows=_ROWS,
        ).passed
        assert not evaluate_check(
            Check(label="l", kind="lower_bound", column="mean", against=15.0),
            rows=_ROWS,
        ).passed
        # inf observation: fails under "fail", skipped (vacuous pass) under "skip"
        rows = [{"mean": math.inf}]
        assert not evaluate_check(
            Check(label="l", kind="lower_bound", column="mean", against=5.0),
            rows=rows,
        ).passed
        skipping = evaluate_check(
            Check(label="l", kind="lower_bound", column="mean", against=5.0,
                  non_finite="skip"),
            rows=rows,
        )
        assert skipping.passed and skipping.skipped == 1 and skipping.rows == 0

    def test_require_rows_fails_empty_selection(self):
        result = evaluate_check(
            Check(label="l", kind="lower_bound", column="mean", against=5.0,
                  non_finite="skip", require_rows=1),
            rows=[{"mean": math.inf}],
        )
        assert not result.passed and "needs at least 1" in result.detail

    def test_log_slope_pass_fail_and_insufficient(self):
        rows = [{"n": 2 ** k, "y": float(2 ** k)} for k in range(4)]  # slope 1
        passing = evaluate_check(
            Check(label="s", kind="log_slope", column="y", x="n", low=0.5, high=1.8),
            rows=rows,
        )
        assert passing.passed and passing.observed == pytest.approx(1.0)
        failing = evaluate_check(
            Check(label="s", kind="log_slope", column="y", x="n", low=1.5),
            rows=rows,
        )
        assert not failing.passed
        for policy, expected in (("pass", True), ("fail", False)):
            result = evaluate_check(
                Check(label="s", kind="log_slope", column="y", x="n", low=0.0,
                      insufficient=policy),
                rows=rows[:1],
            )
            assert result.passed is expected
            assert math.isnan(result.observed)

    def test_monotonic_directions(self):
        rows = [{"v": 1.0}, {"v": 2.0}, {"v": 3.0}]
        assert evaluate_check(
            Check(label="m", kind="monotonic", column="v", strict=True),
            rows=rows,
        ).passed
        assert not evaluate_check(
            Check(label="m", kind="monotonic", column="v", direction="decreasing"),
            rows=rows,
        ).passed
        # ties fail strict, pass non-strict
        tied = [{"v": 1.0}, {"v": 1.0}]
        assert not evaluate_check(
            Check(label="m", kind="monotonic", column="v", strict=True), rows=tied
        ).passed
        assert evaluate_check(
            Check(label="m", kind="monotonic", column="v"), rows=tied
        ).passed

    def test_monotonic_orders_by_x(self):
        rows = [{"t": 3, "v": 9.0}, {"t": 1, "v": 1.0}, {"t": 2, "v": 4.0}]
        assert evaluate_check(
            Check(label="m", kind="monotonic", column="v", x="t", strict=True),
            rows=rows,
        ).passed

    def test_ratio_between_pass_and_fail(self):
        passing = evaluate_check(
            Check(label="r", kind="ratio_between", column="mean", against="bound",
                  low=0.3, high=3.0),
            rows=_ROWS,
        )
        assert passing.passed
        failing = evaluate_check(
            Check(label="r", kind="ratio_between", column="mean", against="bound",
                  low=0.6, high=3.0),
            rows=_ROWS,
        )
        assert not failing.passed
        assert failing.observed == pytest.approx(0.5)

    def test_ci_width_pass_and_fail(self):
        rows = [{"trials": 100, "completion_rate": 1.0, "std": 1.0, "mean": 5.0}]
        # width = 2 * 1.96 * 1 / 10 = 0.392
        assert evaluate_check(
            Check(label="c", kind="ci_width", high=0.5), rows=rows
        ).passed
        failing = evaluate_check(
            Check(label="c", kind="ci_width", high=0.1), rows=rows
        )
        assert not failing.passed
        assert failing.observed == pytest.approx(0.392)
        # no completed trials -> infinite width
        assert not evaluate_check(
            Check(label="c", kind="ci_width", high=100.0),
            rows=[{"trials": 4, "completion_rate": 0.0, "std": 0.0}],
        ).passed

    def test_all_true_pass_and_fail(self):
        assert evaluate_check(
            Check(label="a", kind="all_true", column="ok",
                  where={"net": "a"}),
            rows=_ROWS,
        ).passed
        failing = evaluate_check(
            Check(label="a", kind="all_true", column="ok"), rows=_ROWS
        )
        assert not failing.passed
        assert failing.observed == pytest.approx(2.0 / 3.0)

    def test_equals_tolerance_both_directions(self):
        rows = [{"got": 8.0, "want": 8.0}, {"got": 8.1, "want": 8.0}]
        assert not evaluate_check(
            Check(label="e", kind="equals", column="got", against="want"), rows=rows
        ).passed
        assert evaluate_check(
            Check(label="e", kind="equals", column="got", against="want",
                  tolerance=0.2),
            rows=rows,
        ).passed

    def test_where_exists_filters(self):
        rows = [{"quantity": "phi", "v": 1.0}, {"rho": 0.5, "v": -1.0}]
        result = evaluate_check(
            Check(label="w", kind="lower_bound", column="v", against=0.0,
                  where={"quantity": {"exists": True}}),
            rows=rows,
        )
        assert result.passed and result.rows == 1

    def test_missing_column_is_an_error(self):
        with pytest.raises(ValueError, match="missing from row"):
            evaluate_check(
                Check(label="m", kind="upper_bound", column="nope", against=1.0),
                rows=_ROWS,
            )

    def test_duplicate_labels_rejected(self):
        table = [
            Check(label="same", kind="all_true", column="ok"),
            Check(label="same", kind="all_true", column="ok"),
        ]
        with pytest.raises(ValueError, match="unique"):
            evaluate_checks(table, rows=_ROWS)

    def test_derived_source(self):
        derived = {"slope_a": 1.2, "slope_b": 0.4}
        assert evaluate_check(
            Check(label="d", kind="lower_bound", source="derived",
                  column="slope_a", against="slope_b", strict=True),
            derived=derived,
        ).passed
        assert not evaluate_check(
            Check(label="d", kind="upper_bound", source="derived",
                  column="slope_a", against=1.0),
            derived=derived,
        ).passed


class TestDatasets:
    def test_experiment_result_coercion(self):
        result = ExperimentResult(
            experiment_id="EX", title="t", claim="c",
            rows=[{"v": 1.0, "cap": 2.0}],
            derived={"slope": 0.7},
        )
        report = evaluate_checks(
            [
                Check(label="rows", kind="upper_bound", column="v", against="cap"),
                Check(label="derived", kind="upper_bound", source="derived",
                      column="slope", against=1.0),
            ],
            result,
        )
        assert report.passed and report.counts == (2, 2)

    def test_rows_from_points_flattens_payload(self):
        class StubScenario:
            sweep_name = "n"

        class StubPoint:
            label = "demo"
            scenario = StubScenario()
            value = 16
            payload = {
                "n": 16,
                "value": 16,
                "summary": {"mean": 4.0, "trials": 3},
                "probe": {"delta": 2.0},
                "spread_times": [1.0, 2.0],
            }

        rows = rows_from_points([StubPoint()])
        assert rows == [
            {"label": "demo", "n": 16, "mean": 4.0, "trials": 3, "delta": 2.0,
             "value": 16}
        ]

    def test_check_report_failures_and_dict(self):
        report = CheckReport(results=(
            CheckResult(label="good", kind="all_true", passed=True),
            CheckResult(label="bad", kind="all_true", passed=False),
        ))
        assert not report.passed
        assert [r.label for r in report.failures()] == ["bad"]
        document = report.as_dict()
        assert document["passed"] == 1 and document["checked"] == 2
        assert not document["all_passed"]

    def test_dataset_rejects_unknown_shape(self):
        with pytest.raises(ValueError, match="dataset"):
            evaluate_checks([Check(label="x", kind="all_true", column="ok")], 42)


# ---------------------------------------------------------------------------
# scenario attachment
# ---------------------------------------------------------------------------


class TestScenarioChecks:
    def make(self):
        return Scenario(
            label="tiny", network="clique", sweep=(8, 12), trials=2, seed=3,
            checks=(
                Check(label="finishes fast", kind="upper_bound",
                      column="mean", against=1000.0),
                Check(label="every trial completes", kind="equals",
                      column="completion_rate", against=1.0),
            ),
        )

    def test_round_trip_with_checks(self):
        scenario = self.make()
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_checks_do_not_change_cache_keys(self):
        with_checks = self.make()
        bare = Scenario(label="tiny", network="clique", sweep=(8, 12), trials=2, seed=3)
        assert ([p.cache_key() for p in with_checks.points()]
                == [p.cache_key() for p in bare.points()])

    def test_check_dicts_accepted(self):
        scenario = Scenario(
            label="tiny", network="clique", sweep=(8,), trials=1, seed=3,
            checks=[{"label": "ok", "kind": "all_true", "column": "completed"}],
        )
        assert isinstance(scenario.checks[0], Check)

    def test_scenarios_run_evaluates_checks(self, tmp_path, capsys):
        document = {"scenarios": [self.make().to_dict()]}
        path = tmp_path / "checked.json"
        path.write_text(json.dumps(document))
        buffer = io.StringIO()
        code = main(["scenarios", "run", str(path), "--no-cache"], out=buffer)
        assert code == 0
        text = buffer.getvalue()
        assert "checks for 'tiny'" in text and "PASS" in text

    def test_scenarios_run_failing_check_exits_nonzero(self, tmp_path):
        scenario = Scenario(
            label="doomed", network="clique", sweep=(8,), trials=2, seed=3,
            checks=(Check(label="impossible", kind="upper_bound",
                          column="mean", against=0.0),),
        )
        path = tmp_path / "doomed.json"
        path.write_text(scenario.to_json())
        buffer = io.StringIO()
        code = main(["scenarios", "run", str(path), "--no-cache", "--json"], out=buffer)
        assert code == 1
        document = json.loads(buffer.getvalue())
        assert not document["all_passed"]
        assert document["checks"]["doomed"]["checks"][0]["passed"] is False
        assert document["points"][0]["payload"]["n"] == 8

    def test_duplicate_labels_cannot_mask_a_failing_report(self, tmp_path):
        # First scenario fails its check, second (same label) passes: the
        # failing report must survive and the exit code must stay non-zero.
        failing = Scenario(
            label="twin", network="clique", sweep=(8,), trials=2, seed=3,
            checks=(Check(label="impossible", kind="upper_bound",
                          column="mean", against=0.0),),
        )
        passing = Scenario(
            label="twin", network="clique", sweep=(8,), trials=2, seed=4,
            checks=(Check(label="trivial", kind="upper_bound",
                          column="mean", against=1e9),),
        )
        path = tmp_path / "twins.json"
        path.write_text(json.dumps(
            {"scenarios": [failing.to_dict(), passing.to_dict()]}
        ))
        buffer = io.StringIO()
        code = main(["scenarios", "run", str(path), "--no-cache", "--json"], out=buffer)
        assert code == 1
        document = json.loads(buffer.getvalue())
        assert not document["all_passed"]
        assert set(document["checks"]) == {"twin", "twin #1"}
        assert document["checks"]["twin"]["all_passed"] is False

    def test_scenarios_run_without_checks_keeps_list_schema(self, tmp_path):
        scenario = Scenario(label="plain", network="clique", sweep=(8,),
                            trials=1, seed=3)
        path = tmp_path / "plain.json"
        path.write_text(scenario.to_json())
        buffer = io.StringIO()
        code = main(["scenarios", "run", str(path), "--no-cache", "--json"], out=buffer)
        assert code == 0
        assert isinstance(json.loads(buffer.getvalue()), list)


# ---------------------------------------------------------------------------
# the verify gate and the E1-E9 regression
# ---------------------------------------------------------------------------


class TestVerifyCommand:
    def test_verify_single_experiment(self):
        buffer = io.StringIO()
        code = main(["verify", "--only", "E8", "--no-cache"], out=buffer)
        assert code == 0
        text = buffer.getvalue()
        assert "Verification: 2 / 2 checks passed" in text

    def test_verify_json_schema(self):
        buffer = io.StringIO()
        code = main(["verify", "--only", "E8", "--no-cache", "--json"], out=buffer)
        assert code == 0
        document = json.loads(buffer.getvalue())
        assert set(document) == {
            "passed", "checked", "all_passed", "experiments", "scale", "execution",
        }
        assert document["all_passed"] is True
        checks = document["experiments"]["E8"]["checks"]
        assert {"label", "kind", "passed", "observed", "bound_low", "bound_high",
                "margin", "rows", "skipped", "detail"} == set(checks[0])

    def test_verify_unknown_id_fails_fast(self, capsys):
        buffer = io.StringIO()
        code = main(["verify", "--only", "E99", "--no-cache"], out=buffer)
        assert code == 2
        assert "unknown experiment id" in capsys.readouterr().err

    def test_report_exits_nonzero_on_failed_check(self, monkeypatch):
        import repro.experiments.reporting as reporting

        failing = ExperimentResult(
            experiment_id="E8", title="t", claim="c", rows=[{"v": 1}], passed=False,
        )
        monkeypatch.setattr(reporting, "build_results", lambda **kwargs: {"E8": failing})
        buffer = io.StringIO()
        assert main(["report", "--only", "E8", "--no-cache"], out=buffer) == 1
        assert main(["verify", "--only", "E8", "--no-cache"], out=buffer) == 1


class TestSeedVerdictRegression:
    """E1-E9 on declarative check tables reproduce the seed verdicts."""

    #: The seed report's pass/fail verdicts (scale=small, default seeds).
    SEED_VERDICTS = {
        "E1": True, "E2": True, "E3": True, "E4": True,
        "E5": True, "E7": True, "E8": True, "E9": True,
    }

    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("seed-verdicts-cache"))

    def test_report_json_verdicts_byte_identical_to_seed(self, cache_dir):
        buffer = io.StringIO()
        code = main(["report", "--json", "--cache-dir", cache_dir], out=buffer)
        assert code == 0
        document = json.loads(buffer.getvalue())
        verdicts = {experiment_id: result["passed"]
                    for experiment_id, result in document["results"].items()}
        assert (json.dumps(verdicts, sort_keys=True)
                == json.dumps(self.SEED_VERDICTS, sort_keys=True))
        assert document["passed"] == document["checked"] == len(self.SEED_VERDICTS)

    def test_verify_agrees_with_report(self, cache_dir):
        # Same cache dir: verify resumes from the report's artifacts.
        buffer = io.StringIO()
        code = main(["verify", "--json", "--cache-dir", cache_dir], out=buffer)
        assert code == 0
        document = json.loads(buffer.getvalue())
        assert document["all_passed"] is True
        assert document["passed"] == document["checked"] >= 21
        verdicts = {experiment_id: entry["passed"]
                    for experiment_id, entry in document["experiments"].items()}
        assert (json.dumps(verdicts, sort_keys=True)
                == json.dumps(self.SEED_VERDICTS, sort_keys=True))

    def test_every_experiment_has_a_declarative_table(self):
        from repro.experiments.registry import CHECK_TABLES, EXPERIMENTS

        assert set(CHECK_TABLES) == set(EXPERIMENTS)
        for experiment_id, builder in CHECK_TABLES.items():
            table = builder(scale="small")
            assert table, f"{experiment_id} has an empty check table"
            for check in table:
                assert Check.from_dict(check.to_dict()) == check
