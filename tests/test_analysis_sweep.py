"""Unit tests for parameter sweeps."""

import pytest

from repro.analysis.sweep import SweepResult, sweep
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, cycle


def clique_factory(n):
    return StaticDynamicNetwork(clique(range(n)))


class TestSweep:
    def test_sweep_produces_one_point_per_value(self):
        result = sweep(
            "n",
            [6, 8, 10],
            clique_factory,
            AsynchronousRumorSpreading().run,
            trials=3,
            rng=0,
        )
        assert result.parameter_name == "n"
        assert result.values() == [6, 8, 10]
        assert len(result.points) == 3

    def test_rows_are_flat_dicts(self):
        result = sweep(
            "n", [6, 8], clique_factory, AsynchronousRumorSpreading().run, trials=2, rng=1
        )
        rows = result.rows()
        assert rows[0]["n"] == 6
        assert "mean" in rows[0]
        assert "whp" in rows[0]

    def test_series_extraction(self):
        result = sweep(
            "n", [6, 8], clique_factory, AsynchronousRumorSpreading().run, trials=2, rng=2
        )
        means = result.series("mean")
        assert len(means) == 2
        with pytest.raises(ValueError):
            result.series("no_such_column")

    def test_extras_for_adds_columns(self):
        result = sweep(
            "n",
            [6, 8],
            clique_factory,
            AsynchronousRumorSpreading().run,
            trials=2,
            rng=3,
            extras_for=lambda value, summary: {"twice_n": 2 * value},
        )
        assert [row["twice_n"] for row in result.rows()] == [12, 16]

    def test_source_for_override(self):
        captured = []

        def source_for(value, network):
            captured.append(value)
            return value - 1

        result = sweep(
            "n",
            [6, 8],
            lambda n: StaticDynamicNetwork(cycle(range(n))),
            AsynchronousRumorSpreading().run,
            trials=1,
            rng=4,
            source_for=source_for,
            keep_results=True,
        )
        assert captured == [6, 8]
        assert result.points[0].summary.results[0].source == 5
        assert result.points[1].summary.results[0].source == 7

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep("n", [], clique_factory, AsynchronousRumorSpreading().run, trials=1)

    def test_reproducibility(self):
        kwargs = dict(
            parameter_name="n",
            values=[6, 8],
            network_factory=clique_factory,
            runner=AsynchronousRumorSpreading().run,
            trials=3,
            rng=77,
        )
        first = sweep(**kwargs)
        second = sweep(**kwargs)
        assert first.series("mean") == second.series("mean")
