"""Unit tests for the mobile-agents proximity network."""

import numpy as np
import pytest

from repro.dynamics.mobile_agents import MobileAgentsNetwork


class TestConstruction:
    def test_basic_parameters(self):
        network = MobileAgentsNetwork(10, side=8, radius=1)
        assert network.n == 10
        assert network.side == 8

    def test_positions_require_reset(self):
        network = MobileAgentsNetwork(5, side=4)
        with pytest.raises(ValueError):
            network.positions()

    def test_positions_within_grid(self):
        network = MobileAgentsNetwork(20, side=5, rng=0)
        network.reset(0)
        positions = network.positions()
        assert positions.shape == (20, 2)
        assert positions.min() >= 0
        assert positions.max() < 5


class TestSnapshots:
    def test_snapshot_nodes_are_agents(self):
        network = MobileAgentsNetwork(12, side=6)
        network.reset(1)
        graph = network.graph_for_step(0, frozenset())
        assert set(graph.nodes()) == set(range(12))

    def test_radius_zero_connects_only_colocated_agents(self):
        network = MobileAgentsNetwork(30, side=2, radius=0, rng=2)
        network.reset(2)
        graph = network.graph_for_step(0, frozenset())
        positions = network.positions()
        for u, v in graph.edges():
            assert tuple(positions[u]) == tuple(positions[v])

    def test_radius_one_connects_adjacent_cells(self):
        network = MobileAgentsNetwork(40, side=4, radius=1, rng=3)
        network.reset(3)
        graph = network.graph_for_step(0, frozenset())
        positions = network.positions()
        side = network.side
        for u, v in graph.edges():
            dx = abs(int(positions[u, 0]) - int(positions[v, 0]))
            dy = abs(int(positions[u, 1]) - int(positions[v, 1]))
            dx = min(dx, side - dx)
            dy = min(dy, side - dy)
            assert max(dx, dy) <= 1

    def test_large_radius_yields_complete_graph(self):
        network = MobileAgentsNetwork(8, side=3, radius=3, rng=4)
        network.reset(4)
        graph = network.graph_for_step(0, frozenset())
        assert graph.number_of_edges() == 8 * 7 // 2

    def test_positions_move_by_at_most_one_cell_per_step(self):
        network = MobileAgentsNetwork(15, side=10, torus=False, rng=5)
        network.reset(5)
        network.graph_for_step(0, frozenset())
        before = network.positions()
        network.graph_for_step(1, frozenset())
        after = network.positions()
        assert np.all(np.abs(after - before) <= 1)

    def test_reflecting_walk_stays_in_bounds(self):
        network = MobileAgentsNetwork(10, side=3, torus=False, rng=6)
        network.reset(6)
        for t in range(20):
            network.graph_for_step(t, frozenset())
        positions = network.positions()
        assert positions.min() >= 0
        assert positions.max() < 3

    def test_seeded_runs_reproduce(self):
        network_a = MobileAgentsNetwork(10, side=6, rng=0)
        network_b = MobileAgentsNetwork(10, side=6, rng=0)
        network_a.reset(9)
        network_b.reset(9)
        for t in range(4):
            ga = network_a.graph_for_step(t, frozenset())
            gb = network_b.graph_for_step(t, frozenset())
            assert set(ga.edges()) == set(gb.edges())
