"""Unit tests for the asynchronous rumor spreading simulator."""

import math

import pytest

from repro.core.asynchronous import AsynchronousRumorSpreading, default_time_limit
from repro.core.variants import Variant
from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.dynamics.dichotomy import DynamicStarNetwork
from repro.dynamics.sequences import ExplicitSequenceNetwork, StaticDynamicNetwork
from repro.graphs.generators import clique, cycle, path, star
import networkx as nx


class TestBasics:
    def test_single_run_informs_everyone(self, small_clique_network, async_process):
        result = async_process.run(small_clique_network, rng=0)
        assert result.completed
        assert result.informed_count == 10
        assert result.spread_time > 0
        assert not result.synchronous

    def test_source_is_informed_at_time_zero(self, small_path_network, async_process):
        result = async_process.run(small_path_network, source=3, rng=1)
        assert result.informed_times[3] == 0.0
        assert result.source == 3

    def test_unknown_source_rejected(self, small_path_network, async_process):
        with pytest.raises(ValueError):
            async_process.run(small_path_network, source=99, rng=0)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            AsynchronousRumorSpreading(engine="magic")

    def test_invalid_max_time_rejected(self, small_path_network, async_process):
        with pytest.raises(ValueError):
            async_process.run(small_path_network, rng=0, max_time=0.0)

    def test_default_time_limit_scales_quadratically(self):
        assert default_time_limit(10) < default_time_limit(100)
        assert default_time_limit(100) >= 4 * 100 * 100

    def test_informing_times_are_non_decreasing_along_path(self, async_process):
        network = StaticDynamicNetwork(path(range(8)))
        result = async_process.run(network, source=0, rng=2)
        times = [result.informed_times[node] for node in range(8)]
        assert times == sorted(times)

    def test_timeout_produces_incomplete_result(self, async_process):
        network = StaticDynamicNetwork(path(range(30)))
        result = async_process.run(network, source=0, rng=3, max_time=0.5)
        assert not result.completed
        assert math.isinf(result.spread_time)
        assert result.informed_count < 30

    def test_reproducibility_with_same_seed(self, small_cycle_network, async_process):
        first = async_process.run(small_cycle_network, rng=7)
        second = async_process.run(small_cycle_network, rng=7)
        assert first.spread_time == second.spread_time
        assert first.informed_times == second.informed_times

    def test_different_seeds_differ(self, small_clique_network, async_process):
        first = async_process.run(small_clique_network, rng=1)
        second = async_process.run(small_clique_network, rng=2)
        assert first.spread_time != second.spread_time

    def test_single_node_network(self, async_process):
        graph = nx.Graph()
        graph.add_node(0)
        network = StaticDynamicNetwork(graph)
        result = async_process.run(network, rng=0)
        assert result.completed
        assert result.spread_time == 0.0

    def test_events_counted(self, small_clique_network, async_process):
        result = async_process.run(small_clique_network, rng=0)
        assert result.events == 9  # one informing event per non-source node


class TestDisconnectedAndDynamic:
    def test_disconnected_static_network_never_completes(self, async_process):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        network = StaticDynamicNetwork(graph, precompute_metrics=False)
        result = async_process.run(network, source=0, rng=0, max_time=30.0)
        assert not result.completed
        assert set(result.informed_times) == {0, 1}

    def test_temporarily_disconnected_network_completes_after_reconnection(self, async_process):
        # Step 0: only {0,1} and {2,3} components; step 1 onwards: a path.
        disconnected = nx.Graph()
        disconnected.add_edges_from([(0, 1), (2, 3)])
        connected = path(range(4))
        network = ExplicitSequenceNetwork([disconnected, connected])
        result = async_process.run(network, source=0, rng=1)
        assert result.completed
        # Nodes 2 and 3 can only have been informed after the reconnection.
        assert result.informed_times[2] >= 1.0
        assert result.informed_times[3] >= 1.0

    def test_adaptive_network_receives_growing_informed_sets(self, async_process):
        observed = []

        class Spy(DynamicStarNetwork):
            def _build_snapshot_step(self, t, informed):
                observed.append(len(informed))
                return super()._build_snapshot_step(t, informed)

        result = async_process.run(Spy(12), rng=0)
        assert result.completed
        assert len(observed) > 0
        assert observed == sorted(observed)

    def test_networkx_only_network_uses_default_snapshot_adapter(self, async_process):
        # A network that only implements _build_step must still drive the
        # array engine through the default nx -> CSR adapter.
        observed = []

        class NxSpy(DynamicStarNetwork):
            def _build_step(self, t, informed):
                observed.append(len(informed))
                return super()._build_step(t, informed)

            _build_snapshot_step = DynamicNetwork._build_snapshot_step

        result = async_process.run(NxSpy(10), rng=1)
        assert result.completed
        assert len(observed) > 0
        assert observed == sorted(observed)

    def test_recorder_sees_every_step(self, async_process):
        network = StaticDynamicNetwork(cycle(range(12)))
        recorder = SnapshotRecorder(mode="cheap")
        result = async_process.run(network, rng=4, recorder=recorder)
        assert len(recorder.steps) == result.steps_used
        assert [step.t for step in recorder.steps] == list(range(result.steps_used))


class TestVariants:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_all_variants_complete_on_a_clique(self, variant):
        process = AsynchronousRumorSpreading(variant=variant)
        network = StaticDynamicNetwork(clique(range(8)))
        result = process.run(network, rng=0)
        assert result.completed

    def test_pull_only_cannot_cross_into_a_leaf_forest(self):
        # On a star with the rumor at the centre, pull-only still works (leaves
        # pull); with the rumor at a leaf, push-only still works... both
        # complete, but pure PULL from a leaf source requires the centre to
        # pull from the leaf, which happens at rate 1/n — so it is much slower
        # than push-pull.
        network = StaticDynamicNetwork(star(0, range(1, 15)))
        pull = AsynchronousRumorSpreading(variant=Variant.PULL)
        push_pull = AsynchronousRumorSpreading(variant=Variant.PUSH_PULL)
        pull_times = [pull.run(network, source=1, rng=seed).spread_time for seed in range(8)]
        push_pull_times = [
            push_pull.run(network, source=1, rng=seed).spread_time for seed in range(8)
        ]
        assert sum(pull_times) > sum(push_pull_times)

    def test_two_push_is_faster_than_push_on_regular_graphs(self):
        network = StaticDynamicNetwork(cycle(range(16)))
        push = AsynchronousRumorSpreading(variant=Variant.PUSH)
        two_push = AsynchronousRumorSpreading(variant=Variant.TWO_PUSH)
        push_mean = sum(push.run(network, rng=seed).spread_time for seed in range(10)) / 10
        two_push_mean = sum(two_push.run(network, rng=seed).spread_time for seed in range(10)) / 10
        assert two_push_mean < push_mean


class TestNaiveEngine:
    def test_naive_engine_completes(self, small_clique_network):
        process = AsynchronousRumorSpreading(engine="naive")
        result = process.run(small_clique_network, rng=0)
        assert result.completed
        assert result.events > 0

    def test_naive_engine_counts_all_ticks(self, small_clique_network):
        process = AsynchronousRumorSpreading(engine="naive")
        result = process.run(small_clique_network, rng=0)
        # Every tick is an event, so there are at least as many events as
        # informing contacts.
        assert result.events >= result.informed_count - 1

    def test_naive_engine_timeout(self):
        network = StaticDynamicNetwork(path(range(20)))
        process = AsynchronousRumorSpreading(engine="naive")
        result = process.run(network, source=0, rng=1, max_time=0.2)
        assert not result.completed
