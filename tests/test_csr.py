"""Unit tests for the CSR snapshot layer and the CSR-native generators."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.csr import CsrSnapshot, concatenated_neighbors
from repro.graphs.generators import (
    bridged_double_clique,
    bridged_double_clique_csr,
    clique,
    clique_csr,
    clique_with_pendant,
    clique_with_pendant_csr,
    condensed_to_pair,
    cycle,
    cycle_csr,
    dynamic_star_csr,
    dynamic_star_graph,
    erdos_renyi_csr,
    pair_to_condensed,
    star,
    star_csr,
)


def edge_set(snapshot: CsrSnapshot):
    return {frozenset(edge) for edge in snapshot.to_networkx().edges()}


def nx_edge_set(graph: nx.Graph):
    return {frozenset(edge) for edge in graph.edges()}


class TestCsrSnapshot:
    def test_basic_structure(self):
        snapshot = clique_csr(range(5))
        assert snapshot.n == 5
        assert snapshot.edge_count == 10
        assert list(snapshot.degrees) == [4] * 5
        assert sorted(snapshot.neighbors(2).tolist()) == [0, 1, 3, 4]
        assert snapshot.index_of[3] == 3

    def test_arrays_are_read_only(self):
        snapshot = clique_csr(range(4))
        with pytest.raises(ValueError):
            snapshot.indices[0] = 99
        with pytest.raises(ValueError):
            snapshot.degrees[0] = 99

    def test_inverse_degrees_handles_isolated_nodes(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        graph.add_edge(0, 1)
        snapshot = CsrSnapshot.from_networkx(graph, cache_graph=False)
        assert snapshot.inverse_degrees.tolist() == [1.0, 1.0, 0.0]

    def test_row_owner_enumerates_directed_edges(self):
        snapshot = star_csr(0, [1, 2, 3])
        pairs = set(zip(snapshot.row_owner.tolist(), snapshot.indices.tolist()))
        assert pairs == {(0, 1), (0, 2), (0, 3), (1, 0), (2, 0), (3, 0)}

    def test_from_networkx_caches_source_graph(self):
        graph = clique(range(6))
        snapshot = CsrSnapshot.from_networkx(graph)
        assert snapshot.to_networkx() is graph

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CsrSnapshot(np.array([0, 2]), np.array([1, 0]), [0, 1, 2])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            CsrSnapshot(np.array([0, 0, 0]), np.empty(0, dtype=np.int64), [0, 0])

    def test_is_connected(self):
        assert clique_csr(range(4)).is_connected()
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert not CsrSnapshot.from_networkx(graph, cache_graph=False).is_connected()

    def test_concatenated_neighbors(self):
        snapshot = cycle_csr(range(6))
        out = concatenated_neighbors(snapshot, np.array([0, 3]))
        assert sorted(out.tolist()) == [1, 2, 4, 5]
        empty = concatenated_neighbors(snapshot, np.empty(0, dtype=np.int64))
        assert empty.size == 0


class TestCsrGenerators:
    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_clique_csr_matches_networkx(self, n):
        assert edge_set(clique_csr(range(n))) == nx_edge_set(clique(range(n)))

    @pytest.mark.parametrize("n", [3, 6, 11])
    def test_cycle_csr_matches_networkx(self, n):
        assert edge_set(cycle_csr(range(n))) == nx_edge_set(cycle(range(n)))

    def test_star_csr_matches_networkx(self):
        assert edge_set(star_csr(0, range(1, 8))) == nx_edge_set(star(0, range(1, 8)))

    @pytest.mark.parametrize("center", [0, 3, 7])
    def test_dynamic_star_csr_keeps_label_order(self, center):
        snapshot = dynamic_star_csr(8, center)
        assert snapshot.nodes == tuple(range(8))
        assert edge_set(snapshot) == nx_edge_set(dynamic_star_graph(8, center))

    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_dichotomy_builders_match_networkx(self, n):
        assert edge_set(clique_with_pendant_csr(n)) == nx_edge_set(clique_with_pendant(n))
        assert edge_set(bridged_double_clique_csr(n)) == nx_edge_set(bridged_double_clique(n))
        assert clique_with_pendant_csr(n).nodes == tuple(range(1, n + 2))

    def test_condensed_pair_mapping_round_trips(self):
        n = 23
        pair_ids = np.arange(n * (n - 1) // 2)
        i, j = condensed_to_pair(pair_ids, n)
        assert bool(np.all(i < j))
        assert bool(np.all(pair_to_condensed(i, j, n) == pair_ids))

    def test_erdos_renyi_edge_count_is_binomial(self):
        n = 300
        p = 0.04
        snapshot = erdos_renyi_csr(n, p, rng=5)
        expectation = p * n * (n - 1) / 2
        deviation = 6 * (expectation * (1 - p)) ** 0.5
        assert abs(snapshot.edge_count - expectation) < deviation
        assert snapshot.n == n

    def test_erdos_renyi_extremes(self):
        empty = erdos_renyi_csr(20, 0.0, rng=0)
        assert empty.edge_count == 0
        full = erdos_renyi_csr(20, 1.0, rng=0)
        assert full.edge_count == 20 * 19 // 2

    def test_erdos_renyi_reproducible(self):
        first = erdos_renyi_csr(50, 0.1, rng=123)
        second = erdos_renyi_csr(50, 0.1, rng=123)
        assert np.array_equal(first.indices, second.indices)
        assert np.array_equal(first.indptr, second.indptr)

    def test_erdos_renyi_geometric_edge_count_agrees_with_bernoulli(self):
        # The geometric-skip sampler must realise the same G(n, p) model as
        # the Bernoulli sweep: the edge count is Binomial(n(n-1)/2, p), so
        # both empirical means must sit within a few standard errors of the
        # exact expectation (and of each other).
        n, p, reps = 40, 0.12, 300
        pairs = n * (n - 1) // 2
        mean = pairs * p
        std = (pairs * p * (1 - p)) ** 0.5
        counts = {
            method: np.array(
                [
                    erdos_renyi_csr(n, p, rng=base + i, method=method).edge_count
                    for i in range(reps)
                ]
            )
            for base, method in ((10_000, "bernoulli"), (20_000, "geometric"))
        }
        tolerance = 5 * std / reps**0.5
        for method, observed in counts.items():
            assert abs(observed.mean() - mean) < tolerance, method
        assert abs(counts["bernoulli"].mean() - counts["geometric"].mean()) < 2 * tolerance

    def test_erdos_renyi_geometric_produces_simple_sorted_pairs(self):
        snapshot = erdos_renyi_csr(120, 0.08, rng=9, method="geometric")
        undirected = set()
        for i in range(snapshot.n):
            neighbours = snapshot.neighbors(i)
            assert i not in set(int(j) for j in neighbours)  # no self loops
            for j in neighbours:
                undirected.add((min(i, int(j)), max(i, int(j))))
        assert len(undirected) == snapshot.edge_count  # no duplicate edges

    def test_erdos_renyi_geometric_extremes_and_validation(self):
        assert erdos_renyi_csr(20, 0.0, rng=0, method="geometric").edge_count == 0
        assert erdos_renyi_csr(20, 1.0, rng=0, method="geometric").edge_count == 190
        with pytest.raises(ValueError, match="method"):
            erdos_renyi_csr(20, 0.1, method="quantum")

    def test_erdos_renyi_auto_threshold_keeps_small_n_stream(self):
        # Small graphs stay on the Bernoulli sweep under method="auto", so
        # fixed-seed graphs baked into tests and benchmarks are unchanged.
        auto = erdos_renyi_csr(50, 0.1, rng=123, method="auto")
        bernoulli = erdos_renyi_csr(50, 0.1, rng=123, method="bernoulli")
        assert np.array_equal(auto.indices, bernoulli.indices)
