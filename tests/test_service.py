"""In-process coverage of ``repro.service``: streams, runs, metrics, service.

Everything here exercises the service without sockets — the HTTP adapter has
its own test module (``test_service_http.py``).  The load-bearing assertions:

* :class:`EventStream` replay/eviction/close semantics (the SSE contract);
* engine events streamed by a run match an :class:`repro.api.EventLog` of the
  same point exactly (streaming must not perturb execution);
* run lifecycle states, result documents, check verdicts;
* Prometheus rendering and counter accounting;
* graceful shutdown drains the queue, abortive shutdown fails queued runs.
"""

import threading

import pytest

from repro.api import EventLog, bind_point, event_to_dict
from repro.execution.report import ExecutionReport
from repro.scenarios.scenario import Scenario
from repro.service import (
    EventStream,
    ExperimentService,
    RunRegistry,
    ServiceClosed,
    ServiceConfig,
    ServiceMetrics,
    parse_scenarios,
    render_prometheus,
)

WAIT = 90  # generous terminal-state timeout; runs here take well under a second


def scenario(label="svc", n=16, trials=2, seed=0, **extra):
    return Scenario.from_dict({
        "label": label,
        "kind": "trials",
        "network": "clique",
        "params": {"n": n},
        "trials": trials,
        "seed": seed,
        **extra,
    })


@pytest.fixture
def service():
    svc = ExperimentService(ServiceConfig(workers=1))
    yield svc
    svc.shutdown(drain=False, timeout=30)


class TestEventStream:
    def test_seq_stamping_and_snapshot(self):
        stream = EventStream()
        for index in range(3):
            stamped = stream.emit({"kind": "state", "index": index})
            assert stamped["seq"] == index
        assert [event["seq"] for event in stream.snapshot()] == [0, 1, 2]
        assert len(stream) == 3 and stream.dropped == 0

    def test_bounded_buffer_evicts_oldest(self):
        stream = EventStream(max_events=3)
        for index in range(10):
            stream.emit({"index": index})
        assert stream.dropped == 7
        assert stream.first_retained == 7
        assert [event["index"] for event in stream.snapshot()] == [7, 8, 9]

    def test_late_subscriber_replays_from_start(self):
        stream = EventStream()
        for index in range(5):
            stream.emit({"index": index})
        stream.close()
        events = list(stream.subscribe())
        assert [event["index"] for event in events] == list(range(5))

    def test_subscriber_resumes_past_evicted_prefix(self):
        stream = EventStream(max_events=2)
        for index in range(6):
            stream.emit({"index": index})
        stream.close()
        assert [event["seq"] for event in stream.subscribe()] == [4, 5]

    def test_live_subscriber_sees_events_then_terminates_on_close(self):
        stream = EventStream()
        received = []

        def consume():
            for event in stream.subscribe():
                if event is not None:
                    received.append(event["index"])

        consumer = threading.Thread(target=consume)
        consumer.start()
        for index in range(4):
            stream.emit({"index": index})
        stream.close()
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert received == [0, 1, 2, 3]

    def test_subscribe_from_offset(self):
        stream = EventStream()
        for index in range(5):
            stream.emit({"index": index})
        stream.close()
        assert [event["index"] for event in stream.subscribe(start=3)] == [3, 4]

    def test_heartbeat_yields_none_while_idle(self):
        stream = EventStream()
        subscriber = stream.subscribe(heartbeat=0.01)
        assert next(subscriber) is None  # no events yet: heartbeat tick
        stream.emit({"index": 0})
        assert next(subscriber)["index"] == 0

    def test_emit_after_close_raises(self):
        stream = EventStream()
        stream.close()
        with pytest.raises(RuntimeError, match="closed"):
            stream.emit({})

    def test_wait_closed(self):
        stream = EventStream()
        assert stream.wait_closed(timeout=0.01) is False
        stream.close()
        assert stream.wait_closed(timeout=0.01) is True

    def test_max_events_validated(self):
        with pytest.raises(ValueError, match="max_events"):
            EventStream(max_events=0)


class TestParseScenarios:
    def test_accepts_single_object_list_and_wrapper(self):
        raw = scenario().to_dict()
        assert len(parse_scenarios(raw)) == 1
        assert len(parse_scenarios([raw, raw])) == 2
        assert len(parse_scenarios({"scenarios": [raw]})) == 1

    @pytest.mark.parametrize("document", [[], {"scenarios": []}, "nope", 7,
                                          {"scenarios": "nope"}])
    def test_rejects_non_batches(self, document):
        with pytest.raises(ValueError):
            parse_scenarios(document)

    def test_invalid_scenario_is_a_value_error(self):
        with pytest.raises(ValueError, match="invalid scenario"):
            parse_scenarios({"label": "x", "bogus_field": 1})


class TestRegistry:
    def test_ids_are_stable_and_ordered(self):
        registry = RunRegistry()
        first = registry.create([scenario()], EventStream())
        second = registry.create([scenario()], EventStream())
        assert (first.id, second.id) == ("run-000001", "run-000002")
        assert [record.id for record in registry.list()] == [first.id, second.id]
        assert registry.get("run-000002") is second
        assert registry.get("missing") is None
        assert registry.count_in_state("queued") == 2 and len(registry) == 2


class TestMetrics:
    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServiceMetrics().increment("bogus")

    def test_render_prometheus_shape(self):
        metrics = ServiceMetrics()
        metrics.increment("runs_submitted", 3)
        metrics.merge_execution(ExecutionReport(items=2, succeeded=1, retries=4))
        text = render_prometheus(metrics.counters(), metrics.execution(),
                                 {"queue_depth": 1, "runs_running": 0,
                                  "worker_threads": 2})
        lines = text.splitlines()
        assert "repro_runs_submitted_total 3" in lines
        assert "repro_execution_retries_total 4" in lines
        assert "repro_queue_depth 1" in lines
        # every sample is preceded by HELP and TYPE lines
        samples = [line for line in lines if not line.startswith("#")]
        assert len(lines) == 3 * len(samples)
        for sample in samples:
            name = sample.split()[0]
            assert f"# TYPE {name} counter" in lines or f"# TYPE {name} gauge" in lines


class TestServiceExecution:
    def test_run_completes_with_result_document(self, service):
        record = service.submit([scenario()])
        assert record.wait(timeout=WAIT)
        assert record.state == "completed" and record.error is None
        result = record.result
        assert result["all_passed"] is True
        (point,) = result["points"]
        assert point["status"] == "ok" and point["cached"] is False
        assert point["checksum"].startswith("sha256:")
        assert point["summary"]["trials"] == 2
        assert result["execution"]["succeeded"] == 1
        assert record.detail()["result"] is result

    def test_streamed_engine_events_match_event_log(self, service):
        """The SSE feed is the EventLog protocol verbatim — same hooks, same order."""
        record = service.submit([scenario(seed=3)])
        assert record.wait(timeout=WAIT)
        streamed = [
            {key: value for key, value in event.items() if key != "seq"}
            for event in record.stream.snapshot()
            if event["kind"] not in ("state", "result")
        ]
        # Reproduce the run directly through the api with an EventLog.
        log = EventLog()
        point = scenario(seed=3).points()[0]
        bind_point(point, max_time=None).observe(log).collect()
        assert streamed == [event_to_dict(event) for event in log.events]

    def test_lifecycle_events_bracket_the_run(self, service):
        record = service.submit([scenario(label="states")])
        assert record.wait(timeout=WAIT)
        states = [event["state"] for event in record.stream.snapshot()
                  if event["kind"] == "state"]
        assert states == ["queued", "running", "completed"]
        result_events = [event for event in record.stream.snapshot()
                         if event["kind"] == "result"]
        assert len(result_events) == 1
        assert result_events[0]["result"]["all_passed"] is True

    def test_resubmit_is_served_from_cache_without_engine_events(self, service):
        first = service.submit([scenario(label="cached")])
        assert first.wait(timeout=WAIT)
        second = service.submit([scenario(label="cached")])
        assert second.wait(timeout=WAIT)
        assert second.state == "completed"
        (point,) = second.result["points"]
        assert point["cached"] is True and point["attempts"] == 0
        kinds = {event["kind"] for event in second.stream.snapshot()}
        assert kinds == {"state", "result"}  # no engine hooks for cached points
        assert second.result["execution"]["cache_hits"] == 1
        # both runs' payloads agree byte-for-byte (same checksum)
        assert point["checksum"] == first.result["points"][0]["checksum"]

    def test_failing_check_fails_the_run(self, service):
        impossible = scenario(label="checked", checks=[{
            "label": "mean is non-positive",
            "kind": "upper_bound",
            "column": "mean",
            "against": 0.0,
        }])
        record = service.submit([impossible])
        assert record.wait(timeout=WAIT)
        assert record.state == "failed"
        assert record.error == "checks failed"
        assert record.result["all_passed"] is False
        report = record.result["checks"]["checked"]
        assert report["all_passed"] is False
        assert (report["passed"], report["checked"]) == (0, 1)

    def test_counters_track_outcomes(self, service):
        service.submit([scenario(label="ok-run")]).wait(timeout=WAIT)
        bad = scenario(label="bad-run", checks=[{
            "label": "impossible", "kind": "upper_bound",
            "column": "mean", "against": 0.0,
        }])
        service.submit([bad]).wait(timeout=WAIT)
        counters = service.metrics.counters()
        assert counters["runs_submitted"] == 2
        assert counters["runs_completed"] == 1
        assert counters["runs_failed"] == 1
        assert counters["events_emitted"] >= 6
        text = service.render_metrics()
        assert "repro_runs_failed_total 1" in text.splitlines()


class TestShutdown:
    def test_submit_after_shutdown_raises(self):
        service = ExperimentService(ServiceConfig(workers=1))
        service.shutdown()
        with pytest.raises(ServiceClosed):
            service.submit([scenario()])

    def test_graceful_shutdown_drains_queued_runs(self):
        service = ExperimentService(ServiceConfig(workers=1))
        records = [service.submit([scenario(label=f"drain-{i}", seed=i)])
                   for i in range(3)]
        service.shutdown(drain=True, timeout=WAIT)
        assert [record.state for record in records] == ["completed"] * 3

    def test_abortive_shutdown_fails_unstarted_runs(self):
        service = ExperimentService(ServiceConfig(workers=1))
        records = [service.submit([scenario(label=f"abort-{i}", seed=i)])
                   for i in range(4)]
        service.shutdown(drain=False, timeout=WAIT)
        states = {record.state for record in records}
        assert states <= {"completed", "failed"}
        aborted = [record for record in records if record.state == "failed"]
        for record in aborted:
            assert "service shutdown" in record.error
            assert record.stream.closed
        assert service.metrics.counters()["runs_failed"] == len(aborted)

    def test_shutdown_is_idempotent(self):
        service = ExperimentService(ServiceConfig(workers=2))
        service.shutdown()
        service.shutdown()  # second call must not hang or raise
