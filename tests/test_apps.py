"""Unit tests for the downstream applications (averaging, resource discovery)."""

import math

import pytest

from repro.apps.averaging import run_gossip_averaging
from repro.apps.resource_discovery import run_resource_discovery
from repro.dynamics.edge_markovian import EdgeMarkovianNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, cycle, path


class TestGossipAveraging:
    def test_values_converge_to_the_mean_on_a_clique(self):
        network = StaticDynamicNetwork(clique(range(12)))
        values = {node: float(node) for node in range(12)}
        result = run_gossip_averaging(network, values, max_time=60.0, rng=0)
        assert result.target_mean == pytest.approx(5.5)
        assert result.converged
        assert result.final_deviation() < 1e-3
        for value in result.final_values.values():
            assert value == pytest.approx(5.5, abs=0.1)

    def test_sum_is_conserved(self):
        network = StaticDynamicNetwork(cycle(range(10)))
        values = {node: float(node % 3) for node in range(10)}
        result = run_gossip_averaging(network, values, max_time=5.0, rng=1)
        assert sum(result.final_values.values()) == pytest.approx(sum(values.values()))

    def test_variance_trace_is_monotone_nonincreasing(self):
        network = StaticDynamicNetwork(clique(range(8)))
        values = {node: float(node) for node in range(8)}
        result = run_gossip_averaging(network, values, max_time=10.0, rng=2)
        deviations = [value for _, value in result.variance_trace]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(deviations, deviations[1:]))

    def test_already_converged_input(self):
        network = StaticDynamicNetwork(clique(range(5)))
        values = {node: 2.0 for node in range(5)}
        result = run_gossip_averaging(network, values, max_time=1.0, rng=3)
        assert result.converged
        assert result.convergence_time == 0.0

    def test_missing_values_rejected(self):
        network = StaticDynamicNetwork(clique(range(5)))
        with pytest.raises(ValueError):
            run_gossip_averaging(network, {0: 1.0}, rng=0)

    def test_convergence_slower_on_a_path_than_a_clique(self):
        values = {node: float(node) for node in range(10)}
        clique_result = run_gossip_averaging(
            StaticDynamicNetwork(clique(range(10))), values, max_time=200.0, tolerance=1e-2, rng=4
        )
        path_result = run_gossip_averaging(
            StaticDynamicNetwork(path(range(10))), values, max_time=200.0, tolerance=1e-2, rng=4
        )
        assert clique_result.converged
        assert (not path_result.converged) or (
            path_result.convergence_time > clique_result.convergence_time
        )


class TestResourceDiscovery:
    def test_every_node_learns_every_resource(self):
        network = StaticDynamicNetwork(clique(range(10)))
        result = run_resource_discovery(network, rng=0)
        assert result.completed
        assert all(len(known) == 10 for known in result.knowledge.values())
        assert result.full_knowledge_time > 0

    def test_custom_initial_resources(self):
        network = StaticDynamicNetwork(cycle(range(6)))
        initial = {node: ({"gold"} if node == 0 else set()) for node in range(6)}
        result = run_resource_discovery(network, initial_resources=initial, rng=1)
        assert result.completed
        assert all(known == frozenset({"gold"}) for known in result.knowledge.values())

    def test_time_limit_produces_incomplete_result(self):
        network = StaticDynamicNetwork(path(range(30)))
        result = run_resource_discovery(network, max_time=0.5, rng=2)
        assert not result.completed
        assert math.isinf(result.full_knowledge_time)

    def test_coverage_trace_is_monotone(self):
        network = StaticDynamicNetwork(clique(range(8)))
        result = run_resource_discovery(network, rng=3)
        coverage = [count for _, count in result.coverage_trace]
        assert coverage == sorted(coverage)

    def test_missing_initial_resources_rejected(self):
        network = StaticDynamicNetwork(clique(range(4)))
        with pytest.raises(ValueError):
            run_resource_discovery(network, initial_resources={0: {"a"}}, rng=0)

    def test_runs_on_random_dynamic_networks(self):
        network = EdgeMarkovianNetwork(10, 0.4, 0.2, rng=0)
        result = run_resource_discovery(network, rng=4)
        assert result.completed
