"""Unit tests for the fault model and fault-injected runs."""

import math

import pytest

from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.faults import FaultModel
from repro.core.synchronous import SynchronousRumorSpreading
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, path


class TestFaultModel:
    def test_none_model_has_no_faults(self):
        model = FaultModel.none()
        assert not model.has_faults
        assert model.delivery_probability() == 1.0

    def test_drop_probability_validation(self):
        with pytest.raises(ValueError):
            FaultModel(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(drop_probability=-0.1)

    def test_crashed_nodes_are_down_forever(self):
        model = FaultModel(crashed_nodes={3})
        assert model.is_down(3, 0.0)
        assert model.is_down(3, 100.0)
        assert not model.is_down(2, 50.0)

    def test_crash_times(self):
        model = FaultModel(crash_times={5: 10.0})
        assert not model.is_down(5, 9.9)
        assert model.is_down(5, 10.0)
        assert model.is_down(5, 11.0)

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(crash_times={1: -2.0})

    def test_active_nodes(self):
        model = FaultModel(crashed_nodes={0}, crash_times={1: 5.0})
        assert model.active_nodes(range(4), 0.0) == frozenset({1, 2, 3})
        assert model.active_nodes(range(4), 6.0) == frozenset({2, 3})


class TestFaultInjectedRuns:
    def test_async_run_with_crashed_node_completes_on_survivors(self):
        network = StaticDynamicNetwork(clique(range(8)))
        faults = FaultModel(crashed_nodes={7})
        process = AsynchronousRumorSpreading(faults=faults)
        result = process.run(network, source=0, rng=0)
        assert result.completed
        assert 7 not in result.informed_times
        assert len(result.informed_times) == 7

    def test_crashed_cut_vertex_leaves_far_side_unreachable(self):
        # Crashing the middle of a path cuts the rumor off from the far side:
        # nodes 3 and 4 stay alive but unreachable, so the run never completes.
        network = StaticDynamicNetwork(path(range(5)))
        faults = FaultModel(crashed_nodes={2})
        process = AsynchronousRumorSpreading(faults=faults)
        result = process.run(network, source=0, rng=1, max_time=50.0)
        assert not result.completed
        assert set(result.informed_times) == {0, 1}

    def test_message_drops_slow_the_spread(self):
        network = StaticDynamicNetwork(clique(range(12)))
        slow = AsynchronousRumorSpreading(faults=FaultModel(drop_probability=0.9))
        fast = AsynchronousRumorSpreading()
        slow_times = [slow.run(network, rng=seed).spread_time for seed in range(10)]
        fast_times = [fast.run(network, rng=seed).spread_time for seed in range(10)]
        assert sum(slow_times) / 10 > sum(fast_times) / 10

    def test_drop_probability_one_never_completes(self):
        network = StaticDynamicNetwork(clique(range(6)))
        process = AsynchronousRumorSpreading(faults=FaultModel(drop_probability=1.0))
        result = process.run(network, rng=0, max_time=20.0)
        assert not result.completed
        assert math.isinf(result.spread_time)
        assert len(result.informed_times) == 1

    def test_crash_time_mid_run_boundary_engine(self):
        network = StaticDynamicNetwork(path(range(4)))
        faults = FaultModel(crash_times={3: 0.001})
        process = AsynchronousRumorSpreading(faults=faults)
        result = process.run(network, source=0, rng=2, max_time=100.0)
        assert result.completed
        assert 3 not in result.informed_times

    def test_sync_run_with_drops_and_crashes(self):
        network = StaticDynamicNetwork(clique(range(10)))
        faults = FaultModel(drop_probability=0.5, crashed_nodes={9})
        process = SynchronousRumorSpreading(faults=faults)
        result = process.run(network, source=0, rng=3)
        assert result.completed
        assert 9 not in result.informed_times

    def test_naive_engine_honours_faults(self):
        network = StaticDynamicNetwork(clique(range(6)))
        faults = FaultModel(crashed_nodes={5})
        process = AsynchronousRumorSpreading(engine="naive", faults=faults)
        result = process.run(network, source=0, rng=4)
        assert result.completed
        assert 5 not in result.informed_times
