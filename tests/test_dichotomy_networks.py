"""Unit tests for the Figure 1 dichotomy networks G1 and G2."""

import networkx as nx
import pytest

from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork


class TestCliqueBridgeNetwork:
    def test_node_set_and_source(self):
        network = CliqueBridgeNetwork(10)
        assert network.n == 11
        assert network.default_source() == 11

    def test_initial_snapshot_is_clique_with_pendant(self):
        network = CliqueBridgeNetwork(10)
        network.reset(0)
        graph = network.graph_for_step(0, frozenset({11}))
        assert graph.degree(11) == 1
        assert graph.degree(1) == 10
        assert graph.has_edge(1, 11)

    def test_later_snapshots_are_bridged_cliques(self):
        network = CliqueBridgeNetwork(10)
        network.reset(0)
        network.graph_for_step(0, frozenset({11}))
        graph = network.graph_for_step(1, frozenset({11}))
        copy = graph.copy()
        copy.remove_edge(1, 11)
        assert not nx.is_connected(copy)
        # All later snapshots are the same object (G(t) = G(1) for t >= 1).
        assert network.graph_for_step(2, frozenset({11})) is graph

    def test_known_metrics_shapes(self):
        network = CliqueBridgeNetwork(16)
        first = network.known_step_metrics(0)
        later = network.known_step_metrics(3)
        assert first.conductance == pytest.approx(0.5)
        assert first.absolute_diligence == pytest.approx(1.0)
        assert later.conductance < first.conductance
        assert later.connected

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            CliqueBridgeNetwork(3)


class TestDynamicStarNetwork:
    def test_node_set_and_source(self):
        network = DynamicStarNetwork(10)
        assert network.n == 11
        assert network.default_source() == 1

    def test_initial_center_is_node_zero(self):
        network = DynamicStarNetwork(10)
        network.reset(0)
        graph = network.graph_for_step(0, frozenset({1}))
        assert graph.degree(0) == 10

    def test_center_is_always_uninformed_when_possible(self):
        network = DynamicStarNetwork(10, randomize=False)
        network.reset(0)
        network.graph_for_step(0, frozenset({1}))
        informed = frozenset({0, 1, 2, 3})
        graph = network.graph_for_step(1, informed)
        center = max(graph.degree, key=lambda item: item[1])[0]
        assert center not in informed

    def test_random_center_is_uninformed(self):
        network = DynamicStarNetwork(10, randomize=True)
        network.reset(7)
        network.graph_for_step(0, frozenset({1}))
        informed = frozenset({0, 1, 2})
        for t in range(1, 6):
            graph = network.graph_for_step(t, informed)
            center = max(graph.degree, key=lambda item: item[1])[0]
            assert center not in informed

    def test_all_informed_picks_some_center(self):
        network = DynamicStarNetwork(5)
        network.reset(3)
        network.graph_for_step(0, frozenset({1}))
        everyone = frozenset(range(6))
        graph = network.graph_for_step(1, everyone)
        center = max(graph.degree, key=lambda item: item[1])[0]
        assert center in everyone

    def test_known_metrics_are_star_metrics(self):
        metrics = DynamicStarNetwork(8).known_step_metrics(0)
        assert metrics.conductance == 1.0
        assert metrics.diligence == 1.0
        assert metrics.absolute_diligence == 1.0

    def test_every_snapshot_is_a_star(self):
        network = DynamicStarNetwork(7)
        network.reset(1)
        informed = frozenset({1})
        for t in range(4):
            graph = network.graph_for_step(t, informed)
            degrees = sorted(degree for _, degree in graph.degree())
            assert degrees == [1] * 7 + [7]
