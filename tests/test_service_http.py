"""HTTP-layer tests for ``repro serve``: real sockets, real SSE, real chaos.

Each test binds a :class:`ServiceHTTPServer` on an ephemeral port and talks
to it through the typed :class:`repro.api.ServiceClient` (the surface
programs use), dropping to raw ``urllib`` only where the *wire* itself is
under test — response status codes, SSE framing, malformed bodies.
Coverage required by the service contract:

* endpoint response schemas (health, version, submit, listing, detail,
  artifacts, metrics) and the 400/404/405/503 error paths;
* SSE event ordering pinned against an :class:`repro.api.EventLog` of the
  same point — the stream *is* the observer protocol, serialized;
* concurrent submissions all completing with consistent accounting;
* a ``REPRO_CHAOS`` run whose ``/metrics`` execution counters match the
  run's own :class:`ExecutionReport` exactly;
* graceful shutdown draining queued runs;
* one end-to-end ``repro serve`` subprocess smoke (announce line, request,
  SIGINT shutdown).
"""

import json
import re
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import EventLog, ServiceClient, ServiceError, bind_point, event_to_dict
from repro.execution.policy import RetryPolicy
from repro.scenarios.scenario import Scenario
from repro.service import ExperimentService, ServiceConfig, create_server

WAIT = 90

#: A Prometheus text-format sample line: ``metric_name value``.
SAMPLE_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]* -?[0-9.eE+]+$")


def scenario_body(label="http", n=16, trials=2, seed=0, **extra):
    return {
        "label": label,
        "kind": "trials",
        "network": "clique",
        "params": {"n": n},
        "trials": trials,
        "seed": seed,
        **extra,
    }


class Client:
    """Wire-level helpers returning ``(status, parsed_body)``, plus ``.api``.

    ``.api`` is the typed :class:`ServiceClient`; the raw helpers stay for
    the tests that assert transport details a typed client hides.
    """

    def __init__(self, base):
        self.base = base
        self.api = ServiceClient(base)

    def get(self, path, timeout=30):
        with urllib.request.urlopen(self.base + path, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())

    def get_text(self, path, timeout=30):
        with urllib.request.urlopen(self.base + path, timeout=timeout) as resp:
            return resp.status, resp.read().decode("utf-8")

    def post(self, path, document, timeout=30):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())

    def sse_events(self, path, timeout=60):
        """Collect a run's full SSE feed as parsed ``data:`` documents."""
        events = []
        with urllib.request.urlopen(self.base + path, timeout=timeout) as resp:
            assert resp.headers["Content-Type"].startswith("text/event-stream")
            for raw in resp:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("data: "):
                    events.append(json.loads(line[len("data: "):]))
        return events

    def wait_terminal(self, run_id, timeout=WAIT):
        """Follow the SSE feed to completion, then return the run detail."""
        return self.api.wait(run_id, timeout=timeout)


@pytest.fixture
def served():
    """A live server on an ephemeral port; yields ``(client, service)``."""
    service = ExperimentService(ServiceConfig(workers=2))
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = Client(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client, service
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=30)


class TestEndpointSchemas:
    def test_healthz_and_version(self, served):
        client, _ = served
        assert client.api.health() == {"status": "ok"}
        version = client.api.version()
        assert version["service"] == "repro"
        assert re.fullmatch(r"\d+\.\d+\.\d+", version["version"])

    def test_submit_list_detail_round_trip(self, served):
        client, _ = served
        status, submitted = client.post("/runs", scenario_body())
        assert status == 202
        assert submitted["id"].startswith("run-")
        assert submitted["state"] in ("queued", "running")
        assert submitted["scenarios"] == ["http"]

        detail = client.wait_terminal(submitted["id"])
        assert detail["state"] == "completed" and detail["error"] is None
        assert detail["result"]["all_passed"] is True
        (point,) = detail["result"]["points"]
        assert point["status"] == "ok"
        assert set(point) >= {"label", "value", "index", "key", "cached",
                              "status", "error", "attempts", "checksum", "summary"}

        runs = client.api.runs()
        assert [run["id"] for run in runs] == [submitted["id"]]
        assert runs[0]["state"] == "completed"

    def test_artifact_served_by_content_hash(self, served):
        client, _ = served
        submitted = client.api.submit(scenario_body(label="artifacts"))
        detail = client.wait_terminal(submitted["id"])
        (point,) = detail["result"]["points"]

        assert point["key"] in client.api.artifact_keys()

        artifact = client.api.artifact(point["key"], raw=False)
        assert sorted(artifact) == ["checksum", "key", "kind", "payload", "spec"]
        assert artifact["key"] == point["key"]
        assert artifact["checksum"] == point["checksum"]
        assert artifact["payload"]["summary"] == point["summary"]

    def test_metrics_parse_as_prometheus_text(self, served):
        client, _ = served
        submitted = client.api.submit(scenario_body(label="metrics"))
        client.wait_terminal(submitted["id"])
        text = client.api.metrics()
        lines = text.strip().splitlines()
        samples = {}
        for line in lines:
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            assert SAMPLE_RE.fullmatch(line), f"bad sample line: {line!r}"
            name, value = line.split()
            samples[name] = float(value)
        assert samples["repro_runs_submitted_total"] == 1
        assert samples["repro_runs_completed_total"] == 1
        assert samples["repro_execution_succeeded_total"] == 1
        assert samples["repro_worker_threads"] == 2
        assert samples["repro_http_requests_total"] >= 3

    def test_error_paths(self, served):
        client, _ = served
        # typed surface: errors arrive as ServiceError with the HTTP status
        with pytest.raises(ServiceError) as excinfo:
            client.api.run("run-999999")
        assert excinfo.value.status == 404 and excinfo.value.message
        with pytest.raises(ServiceError) as excinfo:
            list(client.api.events("run-999999"))
        assert excinfo.value.status == 404
        # a missing artifact is None, not an exception
        assert client.api.artifact("deadbeef") is None
        # unknown paths still answer with the JSON error envelope on the wire
        for method in ("GET", "POST"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                client.get("/nope") if method == "GET" else client.post("/nope", {})
            assert excinfo.value.code == 404
            body = json.loads(excinfo.value.read())
            assert body["status"] == 404 and body["error"]

    def test_bad_submissions_are_400(self, served):
        client, _ = served
        bad_bodies = [
            {"scenarios": []},
            {"label": "x", "bogus_field": 1},
            ["not", "scenarios"],
        ]
        for document in bad_bodies:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                client.post("/runs", document)
            assert excinfo.value.code == 400
        # invalid JSON body
        request = urllib.request.Request(
            client.base + "/runs", data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_method_not_allowed(self, served):
        client, _ = served
        request = urllib.request.Request(client.base + "/runs", method="DELETE")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405


class TestEventStreaming:
    def test_sse_ordering_matches_event_log(self, served):
        """The wire feed replays the observer protocol in EventLog order."""
        client, _ = served
        body = scenario_body(label="sse", seed=11)
        submitted = client.api.submit(body)
        events = client.sse_events(f"/runs/{submitted['id']}/events")

        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        states = [event["state"] for event in events if event["kind"] == "state"]
        assert states[0] == "queued" and states[-1] == "completed"

        engine_events = [
            {key: value for key, value in event.items() if key != "seq"}
            for event in events if event["kind"] not in ("state", "result")
        ]
        log = EventLog()
        point = Scenario.from_dict(body).points()[0]
        bind_point(point, max_time=None).observe(log).collect()
        assert engine_events == [event_to_dict(event) for event in log.events]

    def test_late_subscriber_replays_full_stream(self, served):
        client, _ = served
        submitted = client.api.submit(scenario_body(label="late"))
        first = client.sse_events(f"/runs/{submitted['id']}/events")
        # the run is long finished; a second subscriber gets the same replay
        second = client.sse_events(f"/runs/{submitted['id']}/events")
        assert second == first
        # and ?from= resumes mid-stream
        tail = client.sse_events(f"/runs/{submitted['id']}/events?from={first[2]['seq']}")
        assert tail == first[2:]

    def test_concurrent_submissions_all_complete(self, served):
        client, service = served
        count = 6
        submitted = []
        errors = []

        def submit(index):
            try:
                doc = client.api.submit(scenario_body(label=f"conc-{index}", seed=index))
                submitted.append(doc["id"])
            except Exception as error:  # noqa: BLE001 - collected for assertion
                errors.append(error)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == [] and len(set(submitted)) == count

        details = [client.wait_terminal(run_id) for run_id in submitted]
        assert all(detail["state"] == "completed" for detail in details)
        counters = service.metrics.counters()
        assert counters["runs_submitted"] == count
        assert counters["runs_completed"] == count
        assert len(client.api.runs()) == count


class TestChaosMetrics:
    def test_chaos_run_metrics_match_execution_report(self, monkeypatch):
        """Under REPRO_CHAOS, /metrics mirrors the run's ExecutionReport."""
        monkeypatch.setenv("REPRO_CHAOS", "raise=0.4,seed=2")
        service = ExperimentService(ServiceConfig(
            workers=1,
            policy=RetryPolicy(max_attempts=2, backoff_base=0.001, backoff_max=0.001),
        ))
        server = create_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = Client(f"http://127.0.0.1:{server.server_address[1]}")
        try:
            body = scenario_body(label="chaos", trials=1, sweep=[8, 12, 16, 20],
                                 sweep_name="n", params={})
            submitted = client.api.submit(body)
            detail = client.wait_terminal(submitted["id"])
            execution = detail["result"]["execution"]
            # the chaos monkey must actually have bitten this run
            assert execution["retries"] + execution["failures"] > 0

            text = client.api.metrics()
            samples = {
                line.split()[0]: float(line.split()[1])
                for line in text.splitlines() if not line.startswith("#")
            }
            for name, value in execution.items():
                assert samples[f"repro_execution_{name}_total"] == value, name
            expected_state = "completed" if detail["result"]["all_passed"] else "failed"
            assert detail["state"] == expected_state
            assert samples[f"repro_runs_{expected_state}_total"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=30)


class TestShutdownDrain:
    def test_graceful_shutdown_drains_queue_and_rejects_new_runs(self):
        service = ExperimentService(ServiceConfig(workers=1))
        server = create_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        client = Client(f"http://127.0.0.1:{server.server_address[1]}")
        try:
            ids = [client.api.submit(scenario_body(label=f"drain-{i}", seed=i))["id"]
                   for i in range(3)]
            service.shutdown(drain=True, timeout=WAIT)
            # everything queued before shutdown ran to completion
            for run_id in ids:
                assert client.api.run(run_id)["state"] == "completed"
            # the service now refuses new work with 503
            with pytest.raises(ServiceError) as excinfo:
                client.api.submit(scenario_body(label="rejected"))
            assert excinfo.value.status == 503
        finally:
            server.shutdown()
            server.server_close()


class TestServeCommand:
    def test_serve_subprocess_end_to_end(self, tmp_path):
        """`repro serve` announces its port, serves a run, exits on SIGINT."""
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--cache-dir", str(tmp_path / "cache")],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={**__import__("os").environ,
                 "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
            text=True,
        )
        try:
            announce = process.stdout.readline().strip()
            match = re.search(r"http://([\d.]+):(\d+)", announce)
            assert match, f"unexpected announce line: {announce!r}"
            client = Client(f"http://{match.group(1)}:{match.group(2)}")
            assert client.api.health() == {"status": "ok"}
            submitted = client.api.submit(scenario_body(label="cli", trials=1))
            detail = client.wait_terminal(submitted["id"])
            assert detail["state"] == "completed"
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
        assert process.returncode == 0
