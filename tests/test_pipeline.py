"""Tests for the experiment pipeline (parallelism, caching) and the registry."""

import json

import pytest

from repro.experiments import registry
from repro.experiments.registry import run_all
from repro.experiments.result import ExperimentResult
from repro.scenarios import ExperimentPipeline, Scenario


def _tiny_scenario(seed: int = 11) -> Scenario:
    return Scenario(label="tiny clique", network="clique", sweep=(8, 12), trials=3, seed=seed)


class TestPipelineExecution:
    def test_results_in_point_order(self):
        results = ExperimentPipeline().run([_tiny_scenario()])
        assert [point.value for point in results] == [8, 12]
        assert all(point.label == "tiny clique" for point in results)

    def test_jobs_matches_serial(self):
        scenario = _tiny_scenario()
        serial = ExperimentPipeline(jobs=1).run([scenario])
        parallel = ExperimentPipeline(jobs=2).run([scenario])
        assert [point.payload for point in serial] == [point.payload for point in parallel]

    def test_accepts_single_scenario(self):
        results = ExperimentPipeline().run(_tiny_scenario())
        assert len(results) == 2

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentPipeline(jobs=0)


class TestPipelineCache:
    def test_cache_miss_then_hit(self, tmp_path):
        scenario = _tiny_scenario()
        first = ExperimentPipeline(cache_dir=tmp_path).run([scenario])
        assert [point.cached for point in first] == [False, False]
        second = ExperimentPipeline(cache_dir=tmp_path).run([scenario])
        assert [point.cached for point in second] == [True, True]
        assert [point.payload for point in first] == [point.payload for point in second]

    def test_artifacts_are_json_with_spec(self, tmp_path):
        results = ExperimentPipeline(cache_dir=tmp_path).run([_tiny_scenario()])
        artifacts = sorted(tmp_path.glob("*.json"))
        assert len(artifacts) == 2
        artifact = json.loads(artifacts[0].read_text())
        assert set(artifact) == {"key", "kind", "spec", "payload", "checksum"}
        assert artifact["kind"] == "trials"
        assert artifact["key"] in {point.key for point in results}
        assert artifact["checksum"].startswith("sha256:")

    def test_different_seed_misses_cache(self, tmp_path):
        pipeline = ExperimentPipeline(cache_dir=tmp_path)
        pipeline.run([_tiny_scenario(seed=1)])
        results = pipeline.run([_tiny_scenario(seed=2)])
        assert [point.cached for point in results] == [False, False]

    def test_corrupt_artifact_recomputed(self, tmp_path):
        scenario = _tiny_scenario()
        pipeline = ExperimentPipeline(cache_dir=tmp_path)
        first = pipeline.run([scenario])
        for artifact in tmp_path.glob("*.json"):
            artifact.write_text("{not json")
        second = ExperimentPipeline(cache_dir=tmp_path).run([scenario])
        assert [point.cached for point in second] == [False, False]
        assert [point.payload for point in first] == [point.payload for point in second]

    def test_no_cache_dir_never_writes(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        ExperimentPipeline().run([_tiny_scenario()])
        assert list(tmp_path.iterdir()) == []

    def test_infinite_spread_times_survive_the_cache(self, tmp_path):
        # A run that cannot finish within its horizon records inf; the JSON
        # artifact round-trip must preserve it.
        scenario = Scenario(
            label="too short", network="cycle", sweep=(16,), trials=2, seed=0,
            max_time=0.001,
        )
        first = ExperimentPipeline(cache_dir=tmp_path).run([scenario])
        second = ExperimentPipeline(cache_dir=tmp_path).run([scenario])
        assert second[0].cached
        assert first[0].payload == second[0].payload
        assert first[0].payload["spread_times"] == [float("inf")] * 2


class TestRegistryRunAll:
    def test_run_all_dedups_shared_runner(self, monkeypatch):
        calls = []

        def shared(scale="small", pipeline=None):
            calls.append(scale)
            return ExperimentResult(
                experiment_id="EA/EB", title="t", claim="c", rows=[{"x": 1}]
            )

        def solo(scale="small", pipeline=None):
            return ExperimentResult(experiment_id="EC", title="t", claim="c", rows=[{"x": 1}])

        monkeypatch.setattr(
            registry, "EXPERIMENTS", {"EA": shared, "EB": shared, "EC": solo}
        )
        results = run_all(scale="small")
        assert set(results) == {"EA", "EC"}
        assert calls == ["small"]  # the shared E5/E6-style runner ran exactly once

    def test_run_all_real_registry_dedups_e6(self, monkeypatch):
        # Don't run the real experiments; just check the dedup key set.
        ran = []

        def fake_runner_for(experiment_id):
            def runner(scale="small", pipeline=None):
                ran.append(experiment_id)
                return ExperimentResult(
                    experiment_id=experiment_id, title="t", claim="c", rows=[{"x": 1}]
                )

            return runner

        shared = fake_runner_for("E5/E6")
        fakes = {
            experiment_id: (shared if experiment_id in ("E5", "E6")
                            else fake_runner_for(experiment_id))
            for experiment_id in registry.EXPERIMENTS
        }
        monkeypatch.setattr(registry, "EXPERIMENTS", fakes)
        results = run_all()
        assert set(results) == {"E1", "E2", "E3", "E4", "E5", "E7", "E8", "E9"}
        assert ran.count("E5/E6") == 1

    def test_scenario_tables_cover_all_ids(self):
        assert set(registry.SCENARIO_TABLES) == set(registry.EXPERIMENTS)
        assert registry.get_scenario_table("E5") is registry.get_scenario_table("E6")
        for experiment_id in ("E1", "E3", "E8"):
            table = registry.get_scenario_table(experiment_id)(scale="small")
            assert table and all(isinstance(scenario, Scenario) for scenario in table)

    def test_scenario_tables_round_trip(self):
        # Every experiment's declarative table must survive JSON — that is
        # what makes the experiments data-driven.
        seen = set()
        for builder in registry.SCENARIO_TABLES.values():
            if builder in seen:
                continue
            seen.add(builder)
            for scenario in builder(scale="small"):
                assert Scenario.from_json(scenario.to_json()) == scenario
