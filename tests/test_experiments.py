"""Tests for the experiment framework (results, registry, standard networks).

The full experiments run as benchmarks; here we only check the framework
plumbing and one very small end-to-end experiment (the Lemma 4.2 one, which is
fast) so that `pytest tests/` stays quick.
"""

import math

import pytest

from repro.experiments import EXPERIMENTS, ExperimentResult, get_experiment, run_experiment
from repro.experiments import lemma_4_2
from repro.experiments.standard_networks import (
    alternating_regular_complete_network,
    clique_metrics,
    cycle_metrics,
    star_metrics,
    static_clique_network,
    static_cycle_network,
    static_star_network,
)
from repro.experiments.theorem_1_1 import (
    constant_rate_theorem_1_1_bound,
    constant_rate_theorem_1_3_bound,
)


class TestExperimentResult:
    def make(self, passed=True):
        return ExperimentResult(
            experiment_id="EX",
            title="demo",
            claim="a claim",
            rows=[{"a": 1, "b": 2.0}, {"a": 3, "b": math.inf}],
            derived={"slope": 1.23},
            passed=passed,
            notes="note",
        )

    def test_table_contains_rows(self):
        text = self.make().table()
        assert "demo" in text
        assert "inf" in text

    def test_report_mentions_claim_and_verdict(self):
        report = self.make().report()
        assert "a claim" in report
        assert "PASS" in report
        assert "slope" in report
        assert "note" in report

    def test_report_fail_verdict(self):
        assert "FAIL" in self.make(passed=False).report()


class TestRegistry:
    def test_all_design_ids_present(self):
        assert set(EXPERIMENTS) == {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}

    def test_get_experiment_unknown_id(self):
        with pytest.raises(ValueError):
            get_experiment("E42")

    def test_e5_and_e6_share_a_runner(self):
        assert get_experiment("E5") is get_experiment("E6")

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("E8", scale="small", rng=1)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "E8"
        assert result.passed


class TestStandardNetworks:
    def test_clique_metrics(self):
        metrics = clique_metrics(20)
        assert metrics.diligence == 1.0
        assert metrics.absolute_diligence == pytest.approx(1 / 19)

    def test_star_and_cycle_metrics(self):
        assert star_metrics(20).conductance == 1.0
        assert cycle_metrics(20).conductance == pytest.approx(1 / 10)

    def test_static_factories_attach_metrics(self):
        for factory in (static_clique_network, static_star_network, static_cycle_network):
            network = factory(25)
            assert network.known_step_metrics(0) is not None
            assert network.n == 25

    def test_alternating_network_alternates(self):
        network = alternating_regular_complete_network(16, rng=0)
        network.reset(0)
        first = network.graph_for_step(0, frozenset())
        second = network.graph_for_step(1, frozenset())
        assert all(degree == 3 for _, degree in first.degree())
        assert all(degree == 15 for _, degree in second.degree())
        assert network.known_step_metrics(0).absolute_diligence == pytest.approx(1 / 3)

    def test_constant_rate_bound_helpers(self):
        assert constant_rate_theorem_1_1_bound(0.5, 1.0, 64) > 0
        assert constant_rate_theorem_1_3_bound(0.5, 64) == pytest.approx(256)
        with pytest.raises(ValueError):
            constant_rate_theorem_1_1_bound(0.0, 1.0, 64)
        with pytest.raises(ValueError):
            constant_rate_theorem_1_3_bound(0.0, 64)


class TestLemma42Experiment:
    def test_small_run_passes(self):
        result = lemma_4_2.run(scale="small", rng=0)
        assert result.passed
        assert len(result.rows) >= 4
        # The bound column must collapse super-exponentially with k.
        bounds = [row["bound_(2^k/k!)*delta"] for row in result.rows]
        assert bounds[-1] < bounds[0]
