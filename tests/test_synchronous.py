"""Unit tests for the synchronous rumor spreading simulator."""

import math

import networkx as nx
import pytest

from repro.core.faults import FaultModel
from repro.core.synchronous import SynchronousRumorSpreading, SyncVariant, default_round_limit
from repro.dynamics.base import SnapshotRecorder
from repro.dynamics.dichotomy import CliqueBridgeNetwork, DynamicStarNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, path, star


class TestBasics:
    def test_run_completes_and_counts_rounds(self, small_clique_network, sync_process):
        result = sync_process.run(small_clique_network, rng=0)
        assert result.completed
        assert result.synchronous
        assert result.spread_time == float(int(result.spread_time))
        assert result.spread_time >= 1

    def test_unknown_source_rejected(self, small_clique_network, sync_process):
        with pytest.raises(ValueError):
            sync_process.run(small_clique_network, source=123, rng=0)

    def test_round_limit(self, sync_process):
        network = StaticDynamicNetwork(path(range(40)))
        result = sync_process.run(network, source=0, rng=0, max_rounds=2)
        assert not result.completed
        assert math.isinf(result.spread_time)

    def test_default_round_limit_scales(self):
        assert default_round_limit(50) >= 4 * 50 * 50

    def test_reproducibility(self, small_cycle_network, sync_process):
        first = sync_process.run(small_cycle_network, rng=11)
        second = sync_process.run(small_cycle_network, rng=11)
        assert first.informed_times == second.informed_times

    def test_recorder_sees_each_round(self, small_star_network, sync_process):
        recorder = SnapshotRecorder(mode="cheap")
        result = sync_process.run(small_star_network, rng=1, recorder=recorder)
        assert len(recorder.steps) == result.steps_used


class TestRoundSemantics:
    def test_push_pull_on_an_edge_takes_one_round(self, sync_process):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        network = StaticDynamicNetwork(graph)
        result = sync_process.run(network, source=0, rng=0)
        assert result.spread_time == 1.0

    def test_star_from_center_one_round_informs_many(self, sync_process):
        network = StaticDynamicNetwork(star(0, range(1, 20)))
        result = sync_process.run(network, source=0, rng=0)
        # Every leaf pulls from the centre in the first round.
        assert result.informed_at(1.0) == 20

    def test_knowledge_is_evaluated_at_round_start(self, sync_process):
        # On a path 0-1-2 with the rumor at 0, node 2 can never learn the
        # rumor in round 1: node 1 only learns it during round 1.
        network = StaticDynamicNetwork(path(range(3)))
        for seed in range(10):
            result = sync_process.run(network, source=0, rng=seed)
            assert result.informed_times[2] >= 2.0

    def test_dynamic_star_takes_exactly_n_rounds(self, sync_process):
        for n in (8, 17, 33):
            result = sync_process.run(DynamicStarNetwork(n), rng=n)
            assert result.completed
            assert result.spread_time == float(n)

    def test_clique_bridge_first_round_crosses_pendant(self, sync_process):
        result = sync_process.run(CliqueBridgeNetwork(16), rng=0)
        assert result.informed_times[1] == 1.0  # the pendant's only neighbour
        assert result.completed
        assert result.spread_time <= 4 * math.log2(16)


class TestVariantsAndFaults:
    def test_flooding_on_a_path_takes_diameter_rounds(self):
        process = SynchronousRumorSpreading(variant=SyncVariant.FLOODING)
        network = StaticDynamicNetwork(path(range(9)))
        result = process.run(network, source=0, rng=0)
        assert result.completed
        assert result.spread_time == 8.0

    def test_flooding_on_clique_takes_one_round(self):
        process = SynchronousRumorSpreading(variant=SyncVariant.FLOODING)
        network = StaticDynamicNetwork(clique(range(12)))
        result = process.run(network, source=3, rng=0)
        assert result.spread_time == 1.0

    def test_push_only_from_star_center(self):
        # Push-only from the centre: each round the centre pushes to one
        # uniformly random leaf, so it takes many rounds (coupon collector).
        process = SynchronousRumorSpreading(variant=SyncVariant.PUSH)
        network = StaticDynamicNetwork(star(0, range(1, 8)))
        result = process.run(network, source=0, rng=0)
        assert result.completed
        assert result.spread_time >= 7.0

    def test_pull_only_from_star_center(self):
        # Pull-only from the centre: every leaf pulls from the centre in the
        # first round.
        process = SynchronousRumorSpreading(variant=SyncVariant.PULL)
        network = StaticDynamicNetwork(star(0, range(1, 8)))
        result = process.run(network, source=0, rng=0)
        assert result.spread_time == 1.0

    def test_crashed_node_is_excluded(self):
        process = SynchronousRumorSpreading(faults=FaultModel(crashed_nodes={4}))
        network = StaticDynamicNetwork(clique(range(6)))
        result = process.run(network, source=0, rng=0)
        assert result.completed
        assert 4 not in result.informed_times

    def test_full_message_loss_never_completes(self):
        process = SynchronousRumorSpreading(faults=FaultModel(drop_probability=1.0))
        network = StaticDynamicNetwork(clique(range(6)))
        result = process.run(network, source=0, rng=0, max_rounds=30)
        assert not result.completed
        assert result.informed_count == 1
