"""Property-based tests (hypothesis) for core invariants.

These check paper-level invariants on randomly generated graphs and runs:

* ``1/(n−1) ≤ ρ(G) ≤ 1`` and ``1/(n−1) ≤ ρ̄(G) ≤ 1`` for connected graphs;
* conductance lies in ``(0, 1]`` for connected graphs and the Cheeger bounds
  bracket it;
* ``ρ̄(G) ≤ ρ(G) · max_degree/average_degree`` style consistency is not
  asserted directly (it is false in general); instead we check the definitions
  against a brute-force reference implementation;
* simulator invariants: informing times are non-negative, the source is
  informed at 0, every informed node (other than the source) has an informed
  neighbour at some earlier time in one of the snapshots used.
"""

import math

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.synchronous import SynchronousRumorSpreading
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.csr import CsrSnapshot
from repro.graphs.metrics import (
    absolute_diligence,
    conductance_exact,
    conductance_of_cut,
    conductance_spectral_bounds,
    cut_edges,
    diligence_exact,
    volume,
)


def connected_graphs(min_nodes=3, max_nodes=9):
    """Strategy: connected simple graphs built from a random edge subset."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_nodes, max_nodes))
        possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
        # Always include a random spanning tree to guarantee connectivity.
        permutation = draw(st.permutations(list(range(n))))
        tree_edges = [
            (min(permutation[i], permutation[i + 1]), max(permutation[i], permutation[i + 1]))
            for i in range(n - 1)
        ]
        extra = draw(st.lists(st.sampled_from(possible), max_size=12))
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(tree_edges)
        graph.add_edges_from(extra)
        return graph

    return build()


class TestMetricInvariants:
    @given(graph=connected_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_diligence_within_paper_bounds(self, graph):
        n = graph.number_of_nodes()
        rho = diligence_exact(graph)
        assert 1 / (n - 1) - 1e-12 <= rho <= 1 + 1e-12

    @given(graph=connected_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_absolute_diligence_within_bounds(self, graph):
        n = graph.number_of_nodes()
        rho_abs = absolute_diligence(graph)
        assert 1 / (n - 1) - 1e-12 <= rho_abs <= 1 + 1e-12

    @given(graph=connected_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_conductance_in_unit_interval_and_cheeger_bracket(self, graph):
        phi = conductance_exact(graph)
        assert 0 < phi <= 1 + 1e-12
        low, high = conductance_spectral_bounds(graph)
        assert low - 1e-9 <= phi <= high + 1e-9

    @given(graph=connected_graphs(min_nodes=4, max_nodes=8), data=st.data())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_conductance_is_a_minimum_over_cuts(self, graph, data):
        phi = conductance_exact(graph)
        nodes = list(graph.nodes())
        subset = data.draw(
            st.sets(st.sampled_from(nodes), min_size=1, max_size=len(nodes) - 1)
        )
        assert conductance_of_cut(graph, subset) >= phi - 1e-12

    @given(graph=connected_graphs())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_volume_and_cut_consistency(self, graph):
        nodes = list(graph.nodes())
        half = set(nodes[: len(nodes) // 2])
        if not half or len(half) == len(nodes):
            return
        crossing = cut_edges(graph, half)
        assert volume(graph, half) + volume(graph, set(nodes) - half) == volume(graph)
        assert len(crossing) <= volume(graph, half)


class TestCsrRoundTrip:
    @given(graph=connected_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_networkx_round_trip_preserves_nodes_and_edges(self, graph):
        snapshot = CsrSnapshot.from_networkx(graph, cache_graph=False)
        rebuilt = snapshot.to_networkx()
        assert set(rebuilt.nodes()) == set(graph.nodes())
        assert {frozenset(edge) for edge in rebuilt.edges()} == {
            frozenset(edge) for edge in graph.edges()
        }

    @given(graph=connected_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_degrees_and_neighbors_match_networkx(self, graph):
        nodes = sorted(graph.nodes())
        snapshot = CsrSnapshot.from_networkx(graph, nodes=nodes, cache_graph=False)
        for i, node in enumerate(nodes):
            assert snapshot.degree(i) == graph.degree(node)
            neighbour_labels = {nodes[int(j)] for j in snapshot.neighbors(i)}
            assert neighbour_labels == set(graph.neighbors(node))

    @given(graph=connected_graphs())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_array_metrics_match_reference_implementations(self, graph):
        snapshot = CsrSnapshot.from_networkx(graph, cache_graph=False)
        assert snapshot.is_connected() == (
            graph.number_of_edges() > 0 and nx.is_connected(graph)
        )
        assert snapshot.absolute_diligence() == pytest.approx(absolute_diligence(graph))

    @given(graph=connected_graphs(), data=st.data())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_explicit_node_order_is_respected(self, graph, data):
        order = data.draw(st.permutations(sorted(graph.nodes())))
        snapshot = CsrSnapshot.from_networkx(graph, nodes=order, cache_graph=False)
        assert snapshot.nodes == tuple(order)
        assert {snapshot.index_of[node] for node in order} == set(range(snapshot.n))


class TestSimulatorInvariants:
    @given(graph=connected_graphs(min_nodes=3, max_nodes=8), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_async_run_invariants(self, graph, seed):
        network = StaticDynamicNetwork(graph, precompute_metrics=False)
        result = AsynchronousRumorSpreading().run(network, rng=seed)
        assert result.completed
        assert result.informed_times[result.source] == 0.0
        assert all(value >= 0 for value in result.informed_times.values())
        assert result.spread_time == max(result.informed_times.values())
        assert set(result.informed_times) == set(graph.nodes())

    @given(graph=connected_graphs(min_nodes=3, max_nodes=8), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_async_informing_respects_adjacency(self, graph, seed):
        # On a static network, every newly informed node must have an already
        # informed neighbour (the rumor travels along edges).
        network = StaticDynamicNetwork(graph, precompute_metrics=False)
        result = AsynchronousRumorSpreading().run(network, rng=seed)
        order = result.informing_order()
        informed_so_far = set()
        for node, time in order:
            if time == 0.0 and node == result.source:
                informed_so_far.add(node)
                continue
            assert any(neighbour in informed_so_far for neighbour in graph.neighbors(node))
            informed_so_far.add(node)

    @given(graph=connected_graphs(min_nodes=3, max_nodes=8), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sync_round_counts_are_integers_and_bounded(self, graph, seed):
        network = StaticDynamicNetwork(graph, precompute_metrics=False)
        result = SynchronousRumorSpreading().run(network, rng=seed)
        assert result.completed
        n = graph.number_of_nodes()
        assert result.spread_time == int(result.spread_time)
        # Push-pull informs at least one new node per round on a connected
        # static graph, so the round count is at most n - 1... it can stall a
        # round with positive probability only if no informed node contacts an
        # uninformed one, which cannot be excluded; allow generous slack.
        assert result.spread_time <= 20 * n * n
