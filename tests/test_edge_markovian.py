"""Unit tests for the edge-Markovian evolving graph model."""

import networkx as nx
import pytest

from repro.dynamics.edge_markovian import EdgeMarkovianNetwork
from repro.graphs.generators import clique, path


class TestConstruction:
    def test_basic_parameters(self):
        network = EdgeMarkovianNetwork(10, 0.2, 0.3)
        assert network.n == 10
        assert network.stationary_edge_probability() == pytest.approx(0.4)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            EdgeMarkovianNetwork(10, -0.1, 0.5)
        with pytest.raises(ValueError):
            EdgeMarkovianNetwork(10, 0.5, 1.5)
        with pytest.raises(ValueError):
            EdgeMarkovianNetwork(10, 0.0, 0.0)

    def test_explicit_initial_graph_is_used(self):
        initial = path(range(8))
        network = EdgeMarkovianNetwork(8, 0.0, 0.0001, initial_graph=initial)
        network.reset(0)
        snapshot = network.graph_for_step(0, frozenset())
        assert set(snapshot.edges()) == set(initial.edges())

    def test_initial_graph_node_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EdgeMarkovianNetwork(8, 0.1, 0.1, initial_graph=path(range(5)))


class TestEvolution:
    def test_death_probability_one_empties_the_graph(self):
        network = EdgeMarkovianNetwork(8, 0.0, 1.0, initial_graph=clique(range(8)))
        network.reset(0)
        network.graph_for_step(0, frozenset())
        second = network.graph_for_step(1, frozenset())
        assert second.number_of_edges() == 0

    def test_birth_probability_one_completes_the_graph(self):
        empty = nx.Graph()
        empty.add_nodes_from(range(6))
        network = EdgeMarkovianNetwork(6, 1.0, 0.0, initial_graph=empty)
        network.reset(0)
        network.graph_for_step(0, frozenset())
        second = network.graph_for_step(1, frozenset())
        assert second.number_of_edges() == 6 * 5 // 2

    def test_zero_rates_freeze_the_graph(self):
        initial = path(range(8))
        network = EdgeMarkovianNetwork(8, 0.0, 0.0001, initial_graph=initial)
        network.reset(1)
        first = network.graph_for_step(0, frozenset())
        # With q tiny the edge set should essentially never change in one step.
        second = network.graph_for_step(1, frozenset())
        assert abs(second.number_of_edges() - first.number_of_edges()) <= 1

    def test_stationary_density_is_roughly_preserved(self):
        network = EdgeMarkovianNetwork(20, 0.3, 0.3, rng=0)
        network.reset(0)
        densities = []
        possible = 20 * 19 / 2
        for t in range(10):
            graph = network.graph_for_step(t, frozenset())
            densities.append(graph.number_of_edges() / possible)
        average = sum(densities) / len(densities)
        assert 0.3 < average < 0.7

    def test_independent_runs_differ(self):
        network = EdgeMarkovianNetwork(12, 0.4, 0.4)
        network.reset(0)
        first = network.graph_for_step(0, frozenset()).copy()
        network.reset(1)
        second = network.graph_for_step(0, frozenset())
        assert set(first.edges()) != set(second.edges())

    def test_seeded_runs_reproduce(self):
        network_a = EdgeMarkovianNetwork(12, 0.4, 0.4)
        network_b = EdgeMarkovianNetwork(12, 0.4, 0.4)
        network_a.reset(42)
        network_b.reset(42)
        edges_a = [frozenset(network_a.graph_for_step(t, frozenset()).edges()) for t in range(3)]
        edges_b = [frozenset(network_b.graph_for_step(t, frozenset()).edges()) for t in range(3)]
        assert edges_a == edges_b
