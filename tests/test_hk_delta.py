"""Unit tests for the H_{k,Δ}(A, B) construction of Section 4."""

import math

import networkx as nx
import pytest

from repro.graphs.hk_delta import HkDeltaGraph, build_hk_delta, minimum_side_sizes
from repro.graphs.metrics import absolute_diligence, conductance_spectral_bounds


def small_instance(k=3, delta=4, size_a=30, size_b=70, rng=0):
    part_a = list(range(size_a))
    part_b = list(range(size_a, size_a + size_b))
    return build_hk_delta(part_a, part_b, k=k, delta=delta, rng=rng)


class TestConstruction:
    def test_node_set_is_the_union_of_the_parts(self):
        built = small_instance()
        assert set(built.graph.nodes()) == set(built.part_a) | set(built.part_b)

    def test_clusters_have_size_delta(self):
        built = small_instance(k=4, delta=3)
        assert len(built.clusters) == 5
        assert all(len(cluster) == 3 for cluster in built.clusters)

    def test_first_cluster_in_a_rest_in_b(self):
        built = small_instance()
        assert set(built.clusters[0]) <= set(built.part_a)
        for cluster in built.clusters[1:]:
            assert set(cluster) <= set(built.part_b)

    def test_consecutive_clusters_completely_joined(self):
        built = small_instance(k=2, delta=3)
        for left, right in zip(built.clusters, built.clusters[1:]):
            for u in left:
                for v in right:
                    assert built.graph.has_edge(u, v)

    def test_chain_nodes_have_degree_two_delta(self):
        built = small_instance(k=3, delta=4)
        for cluster in built.clusters:
            for node in cluster:
                assert built.graph.degree(node) == 2 * built.delta

    def test_expander_nodes_have_small_degree(self):
        built = small_instance(k=3, delta=4)
        chain_nodes = {node for cluster in built.clusters for node in cluster}
        extra_allowed = math.ceil(built.delta**2 / (len(built.part_a) - built.delta)) + 1
        for node in built.graph.nodes():
            if node in chain_nodes:
                continue
            assert built.graph.degree(node) <= 4 + extra_allowed

    def test_graph_is_connected(self):
        built = small_instance()
        assert nx.is_connected(built.graph)

    def test_cluster_of(self):
        built = small_instance()
        first = built.clusters[0][0]
        last = built.clusters[-1][0]
        assert built.cluster_of(first) == 0
        assert built.cluster_of(last) == built.k
        outsider = [u for u in built.part_a if built.cluster_of(u) == -1]
        assert outsider

    def test_rejects_overlapping_parts(self):
        with pytest.raises(ValueError):
            build_hk_delta([0, 1, 2], [2, 3, 4], k=1, delta=1)

    def test_rejects_too_small_sides(self):
        min_a, min_b = minimum_side_sizes(k=3, delta=4)
        with pytest.raises(ValueError):
            build_hk_delta(list(range(min_a - 1)), list(range(100, 200)), k=3, delta=4)
        with pytest.raises(ValueError):
            build_hk_delta(list(range(min_a)), list(range(100, 100 + min_b - 1)), k=3, delta=4)


class TestObservation41:
    def test_analytic_conductance_formula(self):
        built = small_instance(k=3, delta=4, size_a=30, size_b=70)
        n = built.n
        assert built.analytic_conductance() == pytest.approx(16 / (3 * 16 + n))

    def test_analytic_diligence_formula(self):
        built = small_instance(delta=5)
        assert built.analytic_diligence() == pytest.approx(1 / 5)

    def test_absolute_diligence_matches_analytic_value(self):
        built = small_instance(k=3, delta=4, size_a=40, size_b=90)
        measured = absolute_diligence(built.graph)
        # The bottleneck edges join two degree-2Δ nodes.
        assert measured == pytest.approx(built.analytic_absolute_diligence(), rel=0.5)

    def test_cheeger_upper_bound_consistent_with_small_conductance(self):
        built = small_instance(k=4, delta=3, size_a=30, size_b=60)
        low, high = conductance_spectral_bounds(built.graph)
        analytic = built.analytic_conductance()
        # The true conductance is within the Cheeger bracket and the analytic
        # Θ-value should not exceed the upper Cheeger bound by a large factor.
        assert low <= high
        assert analytic <= 5 * high
