"""Unit tests for the Theorem 1.5 adaptive network (absolute diligence)."""

import networkx as nx
import pytest

from repro.dynamics.absolute_diligent import AbsolutelyDiligentNetwork, even_delta_for_rho
from repro.graphs.metrics import absolute_diligence


class TestEvenDelta:
    def test_even_delta_values(self):
        assert even_delta_for_rho(0.25) == 4
        assert even_delta_for_rho(0.2) == 6
        assert even_delta_for_rho(1.0) == 2
        assert even_delta_for_rho(0.1) == 10

    def test_even_delta_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            even_delta_for_rho(0.0)
        with pytest.raises(ValueError):
            even_delta_for_rho(2.0)


class TestConstruction:
    def test_basic_parameters(self):
        network = AbsolutelyDiligentNetwork(48, 0.25)
        assert network.n == 48
        assert network.delta == 4
        assert network.default_source() == 1

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            AbsolutelyDiligentNetwork(20, 0.25)

    def test_rejects_incompatible_rho(self):
        with pytest.raises(ValueError):
            AbsolutelyDiligentNetwork(48, 0.01)

    def test_initial_snapshot_structure(self):
        network = AbsolutelyDiligentNetwork(48, 0.25, rng=0)
        network.reset(0)
        graph = network.graph_for_step(0, frozenset({1}))
        assert set(graph.nodes()) == set(range(48))
        assert nx.is_connected(graph)
        # There is exactly one edge between the two halves (the bridge).
        half_a = set(range(24))
        crossing = [
            (u, v) for u, v in graph.edges() if (u in half_a) != (v in half_a)
        ]
        assert len(crossing) == 1

    def test_absolute_diligence_matches_one_over_delta_plus_one(self):
        network = AbsolutelyDiligentNetwork(48, 0.25, rng=1)
        network.reset(1)
        graph = network.graph_for_step(0, frozenset({1}))
        assert absolute_diligence(graph) == pytest.approx(1 / (network.delta + 1))

    def test_large_rho_degrades_base_degree_gracefully(self):
        network = AbsolutelyDiligentNetwork(48, 1.0, rng=2)
        network.reset(2)
        graph = network.graph_for_step(0, frozenset({1}))
        assert nx.is_connected(graph)

    def test_known_metrics(self):
        network = AbsolutelyDiligentNetwork(60, 0.2)
        metrics = network.known_step_metrics(0)
        assert metrics.absolute_diligence == pytest.approx(1 / (network.delta + 1))
        assert metrics.connected


class TestAdaptivity:
    def test_snapshot_kept_when_b_unchanged(self):
        network = AbsolutelyDiligentNetwork(48, 0.25, rng=3)
        network.reset(3)
        informed = frozenset({1})
        first = network.graph_for_step(0, informed)
        second = network.graph_for_step(1, informed)
        assert second is first

    def test_snapshot_rebuilt_when_b_shrinks(self):
        network = AbsolutelyDiligentNetwork(48, 0.25, rng=4)
        network.reset(4)
        first = network.graph_for_step(0, frozenset({1}))
        informed = frozenset({1, 30, 31})
        second = network.graph_for_step(1, informed)
        assert second is not first
        assert not (set(network._part_b) & informed)

    def test_bridge_targets_an_uninformed_b_node(self):
        network = AbsolutelyDiligentNetwork(48, 0.25, rng=5)
        network.reset(5)
        network.graph_for_step(0, frozenset({1}))
        informed = frozenset({1, 30})
        graph = network.graph_for_step(1, informed)
        hub = network._hub
        b_neighbours = [v for v in graph.neighbors(hub) if v in set(network._part_b)]
        assert len(b_neighbours) == 1
        assert b_neighbours[0] not in informed

    def test_rebuild_stops_when_b_reaches_sixth(self):
        network = AbsolutelyDiligentNetwork(48, 0.25, rng=6)
        network.reset(6)
        first = network.graph_for_step(0, frozenset({1}))
        informed = frozenset(range(45))
        second = network.graph_for_step(1, informed)
        assert second is first

    def test_predictions(self):
        network = AbsolutelyDiligentNetwork(60, 0.125)
        assert network.predicted_lower_bound() == pytest.approx(60 * 8 / 20)
        assert network.predicted_absolute_upper_bound() == pytest.approx(2 * 60 * 9)
