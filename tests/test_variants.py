"""Unit tests for contact-rate variants and the forward 2-push process."""

import math

import pytest

from repro.core.variants import (
    Variant,
    forward_two_push_chain,
    forward_two_push_tail_bound,
)


class TestVariantRates:
    def test_push_pull_rate(self):
        assert Variant.PUSH_PULL.edge_rate(4, 2) == pytest.approx(1 / 4 + 1 / 2)

    def test_push_rate_depends_only_on_informed_degree(self):
        assert Variant.PUSH.edge_rate(4, 100) == pytest.approx(1 / 4)

    def test_pull_rate_depends_only_on_uninformed_degree(self):
        assert Variant.PULL.edge_rate(100, 4) == pytest.approx(1 / 4)

    def test_two_push_rate(self):
        assert Variant.TWO_PUSH.edge_rate(4, 7) == pytest.approx(2 / 4)

    def test_zero_degree_rejected(self):
        with pytest.raises(ValueError):
            Variant.PUSH_PULL.edge_rate(0, 3)
        with pytest.raises(ValueError):
            Variant.PUSH_PULL.edge_rate(3, 0)

    def test_total_clock_rate(self):
        assert Variant.PUSH_PULL.total_clock_rate(10) == 10.0
        assert Variant.TWO_PUSH.total_clock_rate(10) == 20.0

    def test_push_pull_rate_dominates_push_and_pull(self):
        for informed_degree in (1, 3, 9):
            for uninformed_degree in (1, 4, 11):
                combined = Variant.PUSH_PULL.edge_rate(informed_degree, uninformed_degree)
                assert combined >= Variant.PUSH.edge_rate(informed_degree, uninformed_degree)
                assert combined >= Variant.PULL.edge_rate(informed_degree, uninformed_degree)


class TestForwardTwoPush:
    def test_all_of_s0_informed_by_default(self):
        counts = forward_two_push_chain([5, 5], duration=0.0, rng=0)
        assert counts == [5, 0]

    def test_counts_never_exceed_cluster_sizes(self):
        counts = forward_two_push_chain([4, 6, 3], duration=5.0, rng=1)
        assert all(count <= size for count, size in zip(counts, [4, 6, 3]))

    def test_long_duration_informs_everything(self):
        counts = forward_two_push_chain([3, 3, 3], duration=100.0, rng=2)
        assert counts == [3, 3, 3]

    def test_progress_is_monotone_along_the_chain(self):
        counts = forward_two_push_chain([8] * 6, duration=1.0, rng=3)
        assert counts[0] == 8
        # Later clusters cannot be more informed than is possible given the
        # chain structure started from S_0 only.
        assert all(count >= 0 for count in counts)

    def test_initially_informed_override(self):
        counts = forward_two_push_chain([10, 10], duration=0.0, rng=4, initially_informed=3)
        assert counts[0] == 3

    def test_requires_at_least_two_clusters(self):
        with pytest.raises(ValueError):
            forward_two_push_chain([5], duration=1.0)

    def test_requires_positive_cluster_sizes(self):
        with pytest.raises(ValueError):
            forward_two_push_chain([5, 0], duration=1.0)

    def test_empirical_mean_respects_lemma_4_2_bound(self):
        delta, k = 10, 6
        trials = 300
        total = 0
        for seed in range(trials):
            counts = forward_two_push_chain([delta] * (k + 1), duration=1.0, rng=seed)
            total += counts[-1]
        empirical = total / trials
        bound = forward_two_push_tail_bound(k, delta)
        assert empirical <= bound * 1.3 + 0.05

    def test_tail_bound_formula(self):
        assert forward_two_push_tail_bound(1, 10) == pytest.approx(20.0)
        assert forward_two_push_tail_bound(3, 6) == pytest.approx(6 * 8 / 6)
        # Super-exponential collapse for large k.
        assert forward_two_push_tail_bound(20, 100) < 1e-6

    def test_tail_bound_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            forward_two_push_tail_bound(0, 5)
        with pytest.raises(ValueError):
            forward_two_push_tail_bound(3, 0)
