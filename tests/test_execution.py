"""Tests for the supervised execution layer (policy, report, supervisor)."""

import time

import pytest

from repro.execution import (
    DEFAULT_POLICY,
    ONE_SHOT_POLICY,
    ChaosMonkey,
    ExecutionReport,
    ItemFailedError,
    RetryPolicy,
    deterministic_uniform,
    fork_available,
    parse_chaos_spec,
    raise_first_failure,
    supervised_map,
)
from repro.utils.parallel import fork_map

pytestmark = pytest.mark.skipif(not fork_available(), reason="needs fork")


def _square(value):
    return value * value


class TestDeterministicUniform:
    def test_pure_function_of_entropy(self):
        assert deterministic_uniform(3, 7) == deterministic_uniform(3, 7)
        assert deterministic_uniform(3, 7) != deterministic_uniform(3, 8)

    def test_range(self):
        draws = [deterministic_uniform(index) for index in range(64)]
        assert all(0.0 <= draw < 1.0 for draw in draws)


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_grows(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=10.0)
        delays = [policy.backoff_delay(0, attempt) for attempt in (2, 3, 4)]
        assert delays == [policy.backoff_delay(0, attempt) for attempt in (2, 3, 4)]
        assert delays[0] < delays[1] < delays[2]

    def test_backoff_clamped(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_max=0.5, jitter=0.0)
        assert policy.backoff_delay(0, 9) == 0.5

    def test_jitter_depends_on_index(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=1.0)
        assert policy.backoff_delay(0, 2) != policy.backoff_delay(1, 2)

    @pytest.mark.parametrize("bad", [
        {"max_attempts": 0},
        {"timeout": 0.0},
        {"backoff_factor": 0.5},
        {"jitter": 2.0},
        {"max_pool_respawns": -1},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)

    def test_canned_policies(self):
        assert DEFAULT_POLICY.max_attempts > 1
        assert ONE_SHOT_POLICY.max_attempts == 1
        assert ONE_SHOT_POLICY.max_pool_respawns == 0


class TestExecutionReport:
    def test_merge_sums_counters(self):
        left = ExecutionReport(items=2, retries=1)
        right = ExecutionReport(items=3, timeouts=2)
        left.merge(right)
        assert left.items == 5 and left.retries == 1 and left.timeouts == 2

    def test_clean(self):
        assert ExecutionReport(items=5, succeeded=5, cache_hits=3).clean
        assert not ExecutionReport(retries=1).clean
        assert not ExecutionReport(cache_corruption=1).clean

    def test_dict_round_trip(self):
        report = ExecutionReport(items=4, succeeded=3, failures=1, pool_respawns=2)
        assert ExecutionReport.from_dict(report.as_dict()) == report
        assert list(report.as_dict())[:2] == ["items", "succeeded"]


class TestParseChaosSpec:
    def test_parses_all_fields(self):
        monkey = parse_chaos_spec("kill=0.1,raise=0.2,slow=0.3,corrupt=0.4,"
                                  "slow_seconds=0.5,seed=7")
        assert monkey == ChaosMonkey(seed=7, kill_rate=0.1, raise_rate=0.2,
                                     slow_rate=0.3, slow_seconds=0.5, corrupt_rate=0.4)

    @pytest.mark.parametrize("spec", ["", "  ", "0", "off", "none"])
    def test_blank_means_no_chaos(self, spec):
        assert parse_chaos_spec(spec) is None

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_chaos_spec("kill=0.1,typo=1")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_chaos_spec("kill")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            parse_chaos_spec("kill=0.8,raise=0.8")


class TestChaosDecisions:
    def test_decisions_are_deterministic(self):
        monkey = ChaosMonkey(seed=5, kill_rate=0.3, raise_rate=0.3, slow_rate=0.3)
        first = [monkey.decision(index, 1) for index in range(32)]
        second = [monkey.decision(index, 1) for index in range(32)]
        assert first == second
        assert set(first) <= {None, "kill", "raise", "slow"}

    def test_zero_rates_never_fire(self):
        monkey = ChaosMonkey(seed=5)
        assert all(monkey.decision(index, attempt) is None
                   for index in range(16) for attempt in range(1, 4))
        monkey.maybe_inject(0, 1)  # must be a no-op


class TestSupervisedMapSerial:
    def test_values_in_item_order(self):
        outcomes = supervised_map(_square, [3, 1, 2], workers=1)
        assert [outcome.value for outcome in outcomes] == [9, 1, 4]
        assert all(outcome.ok and outcome.attempts == 1 for outcome in outcomes)

    def test_empty_items(self):
        assert supervised_map(_square, [], workers=4) == []

    def test_retry_until_success(self):
        attempts_seen = []

        def flaky(value):
            attempts_seen.append(value)
            if attempts_seen.count(value) < 3:
                raise ValueError("transient")
            return value

        policy = RetryPolicy(max_attempts=4, backoff_base=0.0, jitter=0.0)
        report = ExecutionReport()
        outcomes = supervised_map(flaky, [7], workers=1, policy=policy, report=report)
        assert outcomes[0].ok and outcomes[0].value == 7
        assert outcomes[0].attempts == 3
        assert report.retries == 2 and report.failures == 0

    def test_exhausted_retries_fail_with_original_exception(self):
        def doomed(value):
            raise ValueError(f"always broken: {value}")

        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        report = ExecutionReport()
        outcomes = supervised_map(doomed, [1, 2], workers=1, policy=policy, report=report)
        assert [outcome.status for outcome in outcomes] == ["failed", "failed"]
        assert all(outcome.attempts == 2 for outcome in outcomes)
        assert report.failures == 2 and report.succeeded == 0
        with pytest.raises(ValueError, match="always broken: 1"):
            raise_first_failure(outcomes)

    def test_max_failures_aborts_remaining(self):
        def sometimes(value):
            if value < 0:
                raise ValueError("negative")
            return value

        policy = RetryPolicy(max_attempts=1)
        outcomes = supervised_map(
            sometimes, [-1, -2, 5], workers=1, policy=policy, max_failures=1
        )
        assert [outcome.status for outcome in outcomes] == ["failed", "failed", "aborted"]
        assert outcomes[2].error and "max_failures=1" in outcomes[2].error

    def test_failure_without_exception_raises_item_failed(self):
        from repro.execution.supervisor import ItemOutcome

        outcome = ItemOutcome(index=0, status="failed", error="worker died", attempts=1)
        with pytest.raises(ItemFailedError, match="worker died"):
            raise_first_failure([outcome])


class TestSupervisedMapPool:
    def test_parallel_matches_serial(self):
        items = list(range(10))
        serial = supervised_map(_square, items, workers=1)
        parallel = supervised_map(_square, items, workers=4)
        assert [outcome.value for outcome in serial] == \
               [outcome.value for outcome in parallel]

    def test_worker_exception_is_captured_per_item(self):
        def picky(value):
            if value == 3:
                raise ValueError("item three is cursed")
            return value

        policy = RetryPolicy(max_attempts=1, backoff_base=0.0)
        outcomes = supervised_map(picky, list(range(6)), workers=3, policy=policy)
        assert [outcome.ok for outcome in outcomes] == [True, True, True, False, True, True]
        assert isinstance(outcomes[3].exception, ValueError)
        assert outcomes[3].error == "ValueError: item three is cursed"

    def test_closures_need_no_pickling(self):
        bound = {"offset": 100}
        outcomes = supervised_map(lambda v: v + bound["offset"], [1, 2, 3], workers=2)
        assert [outcome.value for outcome in outcomes] == [101, 102, 103]


class TestForkMapCompat:
    def test_results_in_order(self):
        assert fork_map(_square, [4, 2, 3], workers=2) == [16, 4, 9]

    def test_empty(self):
        assert fork_map(_square, [], workers=2) == []

    def test_original_exception_re_raised(self):
        def boom(value):
            if value == 1:
                raise KeyError("gone")
            return value

        with pytest.raises(KeyError, match="gone"):
            fork_map(boom, [0, 1, 2], workers=2)

    def test_policy_enables_retry(self, tmp_path):
        marker = tmp_path / "first-attempt"

        def flaky_once(value):
            if value == 1 and not marker.exists():
                marker.write_text("seen")
                raise ValueError("transient")
            return value * 10

        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
        report = ExecutionReport()
        values = fork_map(flaky_once, [0, 1, 2], workers=2,
                          policy=policy, report=report)
        assert values == [0, 10, 20]
        assert report.retries >= 1


class TestTimeoutEnforcement:
    def test_runaway_item_is_censored(self):
        def sleepy(value):
            if value == 1:
                time.sleep(30.0)
            return value

        policy = RetryPolicy(
            max_attempts=2, timeout=0.5, backoff_base=0.0, jitter=0.0,
            max_pool_respawns=10,
        )
        report = ExecutionReport()
        start = time.monotonic()
        outcomes = supervised_map(sleepy, [0, 1, 2, 3], workers=2,
                                  policy=policy, report=report)
        elapsed = time.monotonic() - start
        assert elapsed < 20.0  # the sleeper was preempted, not awaited
        assert [outcome.ok for outcome in outcomes] == [True, False, True, True]
        assert outcomes[1].status == "timeout"
        assert report.timeouts >= 1 and report.pool_respawns >= 1
        assert [outcome.value for outcome in outcomes if outcome.ok] == [0, 2, 3]
