"""Engine dispatch: selection, auto mode, and up-front validation parity.

The new engines must fail *identically* from every entry point: an
unsupported combination raises the same ``ValueError`` family from all three
``RunBuilder`` terminals (``collect``/``sweep``/``once``) and from
``Scenario.bind()`` — never mid-run after trials have already burned time.
"""

import pytest

from repro import api
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.batched import BatchedRumorSpreading
from repro.api.builder import ENGINES, resolve_process
from repro.scenarios.scenario import Scenario


def terminals(builder):
    """The three terminal invocations, normalised to zero-argument thunks."""
    return {
        "collect": builder.collect,
        "sweep": lambda: builder.sweep([8, 12]),
        "once": builder.once,
    }


class TestEngineRegistry:
    def test_engines_tuple(self):
        assert ENGINES == ("boundary", "naive", "jit", "batched", "auto")

    def test_resolve_process_maps_every_engine(self):
        assert isinstance(resolve_process("async", engine="jit"), AsynchronousRumorSpreading)
        assert resolve_process("async", engine="jit").engine == "jit"
        assert isinstance(resolve_process("async", engine="batched"), BatchedRumorSpreading)
        # auto at process level means boundary; terminals do the batched pick.
        assert resolve_process("async", engine="auto").engine == "boundary"

    def test_unknown_engine_rejected_everywhere(self):
        builder = api.run(network="clique", n=8).engine("warp")
        for name, terminal in terminals(builder).items():
            with pytest.raises(ValueError, match="engine"):
                terminal()
        with pytest.raises(ValueError, match="engine"):
            Scenario(label="x", network="clique", params={"n": 8}, engine="warp")


class TestBatchedValidationParity:
    def test_dynamic_network_rejected_from_all_terminals(self):
        builder = api.run(network="dynamic-star", n=16).engine("batched").trials(3)
        for name, terminal in terminals(builder).items():
            with pytest.raises(ValueError, match="static"):
                terminal()

    def test_observers_rejected_from_all_terminals(self):
        class Probe(api.RunObserver):
            pass

        builder = api.run(network="clique", n=8).engine("batched").observe(Probe())
        for name, terminal in terminals(builder).items():
            with pytest.raises(ValueError, match="observer"):
                terminal()

    def test_adaptive_trials_rejected(self):
        builder = (
            api.run(network="clique", n=8)
            .engine("batched")
            .trials(until_ci_width=0.1, max_trials=20)
        )
        for name in ("collect", "sweep"):
            with pytest.raises(ValueError, match="until_ci_width"):
                terminals(builder)[name]()

    def test_sync_algorithm_rejected(self):
        builder = api.run(network="clique", n=8, algorithm="sync").engine("batched")
        for name, terminal in terminals(builder).items():
            with pytest.raises(ValueError, match="asynchronous"):
                terminal()

    def test_scenario_bind_raises_the_same_errors(self):
        with pytest.raises(ValueError, match="asynchronous"):
            Scenario(
                label="s", network="clique", params={"n": 8},
                algorithm="sync", engine="batched",
            )
        adaptive = Scenario(
            label="s", network="clique", params={"n": 8}, engine="batched",
            trials=10, options={"until_ci_width": 0.1, "max_trials": 20},
        )
        with pytest.raises(ValueError, match="until_ci_width"):
            adaptive.bind()
        dynamic = Scenario(
            label="s", network="dynamic-star", params={"n": 16}, engine="batched",
            trials=3,
        )
        with pytest.raises(ValueError, match="static"):
            dynamic.bind().collect()

    def test_jit_sync_rejected_from_all_terminals(self):
        builder = api.run(network="clique", n=8, algorithm="sync").engine("jit")
        for name, terminal in terminals(builder).items():
            with pytest.raises(ValueError, match="asynchronous"):
                terminal()


class TestEngineExecution:
    def test_batched_collect_and_sweep_run(self):
        trial_set = api.run(network="clique", n=24).engine("batched").trials(10).seed(1).collect()
        assert trial_set.nodes == 24 and len(trial_set.spread_times) == 10
        frame = api.run(network="clique").engine("batched").trials(5).seed(2).sweep([12, 16])
        assert [point.nodes for point in frame.points] == [12, 16]

    def test_batched_once_runs_single_trial(self):
        result = api.run(network="clique", n=16).engine("batched").seed(3).once()
        assert result.spread.completed and result.spread.n == 16

    def test_jit_engine_through_api(self):
        trial_set = api.run(network="clique", n=16).engine("jit").trials(4).seed(4).collect()
        assert len(trial_set.spread_times) == 4

    def test_auto_uses_batched_on_static_network(self):
        # Identical seeds: the auto path must reproduce the batched path
        # exactly (both consume the master stream through run_batch).
        auto = api.run(network="clique", n=20).engine("auto").trials(8).seed(7).collect()
        batched = api.run(network="clique", n=20).engine("batched").trials(8).seed(7).collect()
        assert list(auto.spread_times) == list(batched.spread_times)

    def test_auto_falls_back_on_dynamic_network(self):
        auto = api.run(network="dynamic-star", n=12).engine("auto").trials(3).seed(7).collect()
        boundary = api.run(network="dynamic-star", n=12).trials(3).seed(7).collect()
        assert list(auto.spread_times) == list(boundary.spread_times)

    def test_auto_falls_back_with_observers(self):
        class Counter(api.RunObserver):
            def __init__(self):
                self.trials = 0

            def on_trial(self, index, result):
                self.trials += 1

        counter = Counter()
        trial_set = (
            api.run(network="clique", n=12)
            .engine("auto")
            .trials(3)
            .seed(7)
            .observe(counter)
            .collect()
        )
        assert counter.trials == 3 and len(trial_set.spread_times) == 3

    def test_default_engine_unchanged(self):
        assert api.run(network="clique", n=8).spec.engine == "boundary"
