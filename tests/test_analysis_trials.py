"""Unit tests for the trial runner and spread-time statistics."""

import math

import pytest

from repro.analysis.trials import DEFAULT_WHP_QUANTILE, TrialSummary, run_trials
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, path


class TestTrialSummary:
    def test_basic_statistics(self):
        summary = TrialSummary(spread_times=[1.0, 2.0, 3.0, 4.0])
        assert summary.trials == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.completion_rate == 1.0
        assert summary.std > 0

    def test_quantiles(self):
        summary = TrialSummary(spread_times=[float(i) for i in range(1, 11)])
        assert summary.quantile(0.5) == 5.0
        assert summary.quantile(0.9) == 9.0
        assert summary.quantile(1.0) == 10.0
        assert summary.whp_spread_time == summary.quantile(DEFAULT_WHP_QUANTILE)

    def test_timed_out_trials_excluded_from_mean(self):
        summary = TrialSummary(spread_times=[1.0, math.inf, 3.0])
        assert summary.completion_rate == pytest.approx(2 / 3)
        assert summary.mean == pytest.approx(2.0)
        assert summary.maximum == 3.0
        # The w.h.p. quantile still sees the failures.
        assert math.isinf(summary.quantile(1.0))

    def test_all_timed_out(self):
        summary = TrialSummary(spread_times=[math.inf, math.inf])
        assert summary.completion_rate == 0.0
        assert math.isinf(summary.mean)
        assert math.isinf(summary.median)

    def test_confidence_interval_brackets_mean(self):
        summary = TrialSummary(spread_times=[2.0, 4.0, 6.0, 8.0])
        low, high = summary.mean_confidence_interval()
        assert low <= summary.mean <= high

    def test_as_dict_keys(self):
        summary = TrialSummary(spread_times=[1.0, 2.0])
        data = summary.as_dict()
        assert set(data) == {"trials", "completion_rate", "mean", "median", "whp", "min", "max", "std"}

    def test_empty_trials_rejected(self):
        with pytest.raises(ValueError):
            TrialSummary(spread_times=[])

    def test_invalid_quantile_rejected(self):
        summary = TrialSummary(spread_times=[1.0])
        with pytest.raises(ValueError):
            summary.quantile(1.5)


class TestRunTrials:
    def test_runs_requested_number_of_trials(self):
        process = AsynchronousRumorSpreading()
        summary = run_trials(
            process.run,
            lambda: StaticDynamicNetwork(clique(range(8))),
            trials=6,
            rng=0,
        )
        assert summary.trials == 6
        assert summary.completion_rate == 1.0

    def test_results_kept_only_on_request(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(clique(range(6)))
        without = run_trials(process.run, factory, trials=3, rng=0)
        with_results = run_trials(process.run, factory, trials=3, rng=0, keep_results=True)
        assert without.results == []
        assert len(with_results.results) == 3

    def test_reproducible_with_master_seed(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(clique(range(8)))
        first = run_trials(process.run, factory, trials=4, rng=99)
        second = run_trials(process.run, factory, trials=4, rng=99)
        assert first.spread_times == second.spread_times

    def test_run_kwargs_are_forwarded(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(path(range(40)))
        summary = run_trials(process.run, factory, trials=3, rng=0, max_time=0.1)
        assert summary.completion_rate == 0.0

    def test_source_override(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(path(range(6)))
        summary = run_trials(
            process.run, factory, trials=2, rng=1, source=5, keep_results=True
        )
        assert all(result.source == 5 for result in summary.results)

    def test_invalid_trial_count_rejected(self):
        process = AsynchronousRumorSpreading()
        with pytest.raises(ValueError):
            run_trials(process.run, lambda: StaticDynamicNetwork(clique(range(4))), trials=0)
