"""Unit tests for the trial runner and spread-time statistics."""

import math

import numpy as np
import pytest

from repro.analysis.trials import DEFAULT_WHP_QUANTILE, TrialSummary, run_trials
from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, path


class TestTrialSummary:
    def test_basic_statistics(self):
        summary = TrialSummary(spread_times=[1.0, 2.0, 3.0, 4.0])
        assert summary.trials == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.completion_rate == 1.0
        assert summary.std > 0

    def test_quantiles(self):
        summary = TrialSummary(spread_times=[float(i) for i in range(1, 11)])
        # numpy.quantile-consistent linear interpolation over order statistics.
        assert summary.quantile(0.5) == pytest.approx(5.5)
        assert summary.quantile(0.9) == pytest.approx(9.1)
        assert summary.quantile(0.0) == 1.0
        assert summary.quantile(1.0) == 10.0
        assert summary.whp_spread_time == summary.quantile(DEFAULT_WHP_QUANTILE)

    def test_quantile_matches_numpy(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3]
        summary = TrialSummary(spread_times=values)
        for q in (0.0, 0.1, 0.25, 0.5, 0.77, 0.9, 1.0):
            assert summary.quantile(q) == pytest.approx(float(np.quantile(values, q)))

    def test_small_quantile_with_few_trials_is_not_the_minimum(self):
        # The seed's ceil-based index collapsed q=0.1 over 3 trials onto the
        # minimum; the interpolated quantile must sit strictly above it.
        summary = TrialSummary(spread_times=[1.0, 2.0, 3.0])
        assert summary.quantile(0.1) == pytest.approx(1.2)

    def test_quantile_with_infinities_interpolates_safely(self):
        summary = TrialSummary(spread_times=[1.0, 2.0, math.inf, math.inf])
        # Exact positions on finite order statistics stay finite...
        assert summary.quantile(1 / 3) == pytest.approx(2.0)
        # ...while any interpolation into the infinite tail propagates inf, not nan.
        assert math.isinf(summary.quantile(0.5))
        assert math.isinf(summary.quantile(1.0))

    def test_timed_out_trials_excluded_from_mean(self):
        summary = TrialSummary(spread_times=[1.0, math.inf, 3.0])
        assert summary.completion_rate == pytest.approx(2 / 3)
        assert summary.mean == pytest.approx(2.0)
        assert summary.maximum == 3.0
        # The w.h.p. quantile still sees the failures.
        assert math.isinf(summary.quantile(1.0))

    def test_all_timed_out(self):
        summary = TrialSummary(spread_times=[math.inf, math.inf])
        assert summary.completion_rate == 0.0
        assert math.isinf(summary.mean)
        assert math.isinf(summary.median)

    def test_confidence_interval_brackets_mean(self):
        summary = TrialSummary(spread_times=[2.0, 4.0, 6.0, 8.0])
        low, high = summary.mean_confidence_interval()
        assert low <= summary.mean <= high

    def test_as_dict_keys(self):
        summary = TrialSummary(spread_times=[1.0, 2.0])
        data = summary.as_dict()
        assert set(data) == {"trials", "completion_rate", "mean", "median", "whp", "min", "max", "std"}

    def test_empty_trials_rejected(self):
        with pytest.raises(ValueError):
            TrialSummary(spread_times=[])

    def test_invalid_quantile_rejected(self):
        summary = TrialSummary(spread_times=[1.0])
        with pytest.raises(ValueError):
            summary.quantile(1.5)


class TestRunTrials:
    def test_runs_requested_number_of_trials(self):
        process = AsynchronousRumorSpreading()
        summary = run_trials(
            process.run,
            lambda: StaticDynamicNetwork(clique(range(8))),
            trials=6,
            rng=0,
        )
        assert summary.trials == 6
        assert summary.completion_rate == 1.0

    def test_results_kept_only_on_request(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(clique(range(6)))
        without = run_trials(process.run, factory, trials=3, rng=0)
        with_results = run_trials(process.run, factory, trials=3, rng=0, keep_results=True)
        assert without.results == []
        assert len(with_results.results) == 3

    def test_reproducible_with_master_seed(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(clique(range(8)))
        first = run_trials(process.run, factory, trials=4, rng=99)
        second = run_trials(process.run, factory, trials=4, rng=99)
        assert first.spread_times == second.spread_times

    def test_run_kwargs_are_forwarded(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(path(range(40)))
        summary = run_trials(process.run, factory, trials=3, rng=0, max_time=0.1)
        assert summary.completion_rate == 0.0

    def test_source_override(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(path(range(6)))
        summary = run_trials(
            process.run, factory, trials=2, rng=1, source=5, keep_results=True
        )
        assert all(result.source == 5 for result in summary.results)

    def test_invalid_trial_count_rejected(self):
        process = AsynchronousRumorSpreading()
        with pytest.raises(ValueError):
            run_trials(process.run, lambda: StaticDynamicNetwork(clique(range(4))), trials=0)


class TestParallelRunTrials:
    def test_workers_one_is_bit_identical_to_serial(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(clique(range(12)))
        serial = run_trials(process.run, factory, trials=6, rng=42)
        explicit = run_trials(process.run, factory, trials=6, rng=42, workers=1)
        assert serial.spread_times == explicit.spread_times

    def test_parallel_matches_serial_for_fixed_seed(self):
        # Trial i consumes the same derived generator regardless of workers,
        # so on fork platforms the parallel results are bit-identical too.
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(clique(range(12)))
        serial = run_trials(process.run, factory, trials=8, rng=7)
        parallel = run_trials(process.run, factory, trials=8, rng=7, workers=2)
        assert parallel.trials == 8
        assert parallel.spread_times == serial.spread_times

    def test_parallel_keeps_results_on_request(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(clique(range(8)))
        summary = run_trials(
            process.run, factory, trials=4, rng=0, workers=2, keep_results=True
        )
        assert len(summary.results) == 4
        assert all(result.completed for result in summary.results)

    def test_parallel_forwards_run_kwargs_and_source(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(path(range(6)))
        summary = run_trials(
            process.run, factory, trials=3, rng=1, workers=2, source=5, keep_results=True
        )
        assert all(result.source == 5 for result in summary.results)

    def test_invalid_workers_rejected(self):
        process = AsynchronousRumorSpreading()
        factory = lambda: StaticDynamicNetwork(clique(range(4)))
        with pytest.raises(ValueError):
            run_trials(process.run, factory, trials=2, workers=0)
