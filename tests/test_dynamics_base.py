"""Unit tests for the DynamicNetwork protocol and the SnapshotRecorder."""

import math

import networkx as nx
import pytest

from repro.dynamics.base import DynamicNetwork, SnapshotRecorder
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, star
from repro.graphs.metrics import GraphMetrics


class MinimalNetwork(DynamicNetwork):
    """A trivial concrete network for protocol tests."""

    def __init__(self, n=5):
        super().__init__(list(range(n)))
        self.build_calls = []

    def _build_step(self, t, informed):
        self.build_calls.append((t, informed))
        return clique(range(self.n))


class WrongNodesNetwork(DynamicNetwork):
    def _build_step(self, t, informed):
        return clique(range(self.n + 1))


class TestProtocol:
    def test_nodes_and_n(self):
        network = MinimalNetwork(7)
        assert network.n == 7
        assert network.nodes == tuple(range(7))

    def test_default_source_is_first_node(self):
        assert MinimalNetwork(4).default_source() == 0

    def test_reset_required_before_snapshots(self):
        network = MinimalNetwork()
        with pytest.raises(ValueError):
            network.graph_for_step(0, frozenset())

    def test_steps_must_increase(self):
        network = MinimalNetwork()
        network.reset(0)
        network.graph_for_step(0, frozenset())
        network.graph_for_step(2, frozenset())
        with pytest.raises(ValueError):
            network.graph_for_step(1, frozenset())

    def test_negative_or_non_integer_step_rejected(self):
        network = MinimalNetwork()
        network.reset(0)
        with pytest.raises(ValueError):
            network.graph_for_step(-1, frozenset())
        with pytest.raises(ValueError):
            network.graph_for_step(0.5, frozenset())

    def test_reset_allows_reuse(self):
        network = MinimalNetwork()
        network.reset(0)
        network.graph_for_step(3, frozenset())
        network.reset(0)
        graph = network.graph_for_step(0, frozenset())
        assert graph.number_of_nodes() == network.n

    def test_informed_set_is_passed_as_frozenset(self):
        network = MinimalNetwork()
        network.reset(0)
        network.graph_for_step(0, {1, 2})
        assert isinstance(network.build_calls[0][1], frozenset)
        assert network.build_calls[0][1] == frozenset({1, 2})

    def test_snapshot_node_set_is_validated(self):
        network = WrongNodesNetwork(list(range(4)))
        network.reset(0)
        with pytest.raises(ValueError):
            network.graph_for_step(0, frozenset())

    def test_duplicate_node_labels_rejected(self):
        class DuplicateLabels(DynamicNetwork):
            def __init__(self):
                super().__init__([1, 1, 2])

            def _build_step(self, t, informed):
                return clique([1, 2])

        with pytest.raises(ValueError):
            DuplicateLabels()

    def test_known_metrics_default_is_none(self):
        assert MinimalNetwork().known_step_metrics(0) is None


class TestSnapshotRecorder:
    def test_full_mode_measures_small_snapshots(self):
        network = StaticDynamicNetwork(star(0, range(1, 8)), precompute_metrics=False)
        recorder = SnapshotRecorder(mode="full", prefer_known=False)
        network.reset(0)
        graph = network.graph_for_step(0, frozenset())
        recorder.record(network, 0, graph, informed_count=1)
        assert recorder.conductance_series() == pytest.approx([1.0])
        assert recorder.diligence_series() == pytest.approx([1.0])
        assert recorder.absolute_diligence_series() == pytest.approx([1.0])
        assert recorder.connectivity_series() == [1]

    def test_cheap_mode_skips_expensive_metrics(self):
        network = StaticDynamicNetwork(clique(range(25)), precompute_metrics=False)
        recorder = SnapshotRecorder(mode="cheap", prefer_known=False)
        network.reset(0)
        graph = network.graph_for_step(0, frozenset())
        recorder.record(network, 0, graph, informed_count=1)
        assert math.isnan(recorder.conductance_series()[0])
        assert recorder.absolute_diligence_series()[0] == pytest.approx(1 / 24)
        assert recorder.connectivity_series() == [1]

    def test_prefer_known_uses_network_metrics(self):
        metrics = GraphMetrics(
            conductance=0.42, diligence=0.9, absolute_diligence=0.1, connected=True, n=25
        )
        network = StaticDynamicNetwork(clique(range(25)), metrics=metrics)
        recorder = SnapshotRecorder(mode="cheap", prefer_known=True)
        network.reset(0)
        graph = network.graph_for_step(0, frozenset())
        recorder.record(network, 0, graph, informed_count=1)
        assert recorder.conductance_series() == [0.42]
        assert recorder.diligence_series() == [0.9]

    def test_degree_history_tracking(self):
        network = StaticDynamicNetwork(star(0, range(1, 5)))
        recorder = SnapshotRecorder(mode="cheap")
        network.reset(0)
        for step in range(3):
            graph = network.graph_for_step(step, frozenset())
            recorder.record(network, step, graph, informed_count=1)
        assert recorder.degree_history[0] == [4, 4, 4]
        assert recorder.degree_history[1] == [1, 1, 1]

    def test_track_degrees_can_be_disabled(self):
        network = StaticDynamicNetwork(star(0, range(1, 5)))
        recorder = SnapshotRecorder(mode="cheap", track_degrees=False)
        network.reset(0)
        graph = network.graph_for_step(0, frozenset())
        recorder.record(network, 0, graph, informed_count=1)
        assert recorder.degree_history == {}

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SnapshotRecorder(mode="approximate")

    def test_disconnected_snapshot_indicator(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        network = StaticDynamicNetwork(graph, precompute_metrics=False)
        recorder = SnapshotRecorder(mode="cheap", prefer_known=False)
        network.reset(0)
        snapshot = network.graph_for_step(0, frozenset())
        recorder.record(network, 0, snapshot, informed_count=1)
        assert recorder.connectivity_series() == [0]
