"""Unit tests for the Poisson process machinery of Section 2."""

import math

import numpy as np
import pytest

from repro.bounds.poisson import (
    LEMMA_2_2_EXPONENT,
    NonHomogeneousPoissonProcess,
    exponential_race_winner,
    poisson_lower_tail_bound,
)


class TestLemma22:
    def test_exponent_is_negative(self):
        assert LEMMA_2_2_EXPONENT < 0

    def test_bound_decreases_with_rate(self):
        assert poisson_lower_tail_bound(10) > poisson_lower_tail_bound(100)

    def test_bound_at_zero_is_one(self):
        assert poisson_lower_tail_bound(0) == pytest.approx(1.0)

    def test_bound_dominates_empirical_tail(self, rng):
        rate = 40.0
        samples = rng.poisson(rate, size=20_000)
        empirical = np.mean(samples <= rate / 2)
        assert empirical <= poisson_lower_tail_bound(rate) + 0.01

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_lower_tail_bound(-1.0)


class TestExponentialRace:
    def test_single_competitor_always_wins(self):
        winner, time = exponential_race_winner({"a": 2.0}, rng=0)
        assert winner == "a"
        assert time > 0

    def test_zero_rates_are_ignored(self):
        winner, _ = exponential_race_winner({"a": 0.0, "b": 1.0}, rng=1)
        assert winner == "b"

    def test_all_zero_rates_rejected(self):
        with pytest.raises(ValueError):
            exponential_race_winner({"a": 0.0})

    def test_winner_distribution_is_proportional_to_rate(self, rng):
        rates = {"fast": 3.0, "slow": 1.0}
        wins = {"fast": 0, "slow": 0}
        for _ in range(4000):
            winner, _ = exponential_race_winner(rates, rng=rng)
            wins[winner] += 1
        assert wins["fast"] / 4000 == pytest.approx(0.75, abs=0.03)

    def test_race_time_has_summed_rate(self, rng):
        rates = {"a": 2.0, "b": 3.0}
        times = [exponential_race_winner(rates, rng=rng)[1] for _ in range(4000)]
        assert np.mean(times) == pytest.approx(1 / 5, rel=0.1)


class TestNonHomogeneousPoissonProcess:
    def test_rate_at_uses_piecewise_constant_rates(self):
        process = NonHomogeneousPoissonProcess([1.0, 2.0, 0.5])
        assert process.rate_at(0.5) == 1.0
        assert process.rate_at(1.0) == 2.0
        assert process.rate_at(2.9) == 0.5
        assert process.rate_at(10.0) == 0.5  # final rate held

    def test_mean_count_integrates_the_rate(self):
        process = NonHomogeneousPoissonProcess([1.0, 2.0, 0.5])
        assert process.mean_count(0, 3) == pytest.approx(3.5)
        assert process.mean_count(0.5, 1.5) == pytest.approx(0.5 + 1.0)
        assert process.mean_count(1.0, 1.0) == 0.0

    def test_mean_count_validates_interval(self):
        process = NonHomogeneousPoissonProcess([1.0])
        with pytest.raises(ValueError):
            process.mean_count(2.0, 1.0)

    def test_sample_count_matches_mean(self, rng):
        process = NonHomogeneousPoissonProcess([2.0, 4.0])
        counts = [process.sample_count(0, 2, rng=rng) for _ in range(3000)]
        assert np.mean(counts) == pytest.approx(6.0, rel=0.1)

    def test_sample_arrivals_are_sorted_and_in_range(self, rng):
        process = NonHomogeneousPoissonProcess([3.0, 1.0])
        arrivals = process.sample_arrivals(0.0, 2.0, rng=rng)
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= value <= 2.0 for value in arrivals)

    def test_arrival_density_follows_rate(self, rng):
        process = NonHomogeneousPoissonProcess([4.0, 1.0])
        first, second = 0, 0
        for _ in range(500):
            for value in process.sample_arrivals(0.0, 2.0, rng=rng):
                if value < 1.0:
                    first += 1
                else:
                    second += 1
        assert first / max(second, 1) == pytest.approx(4.0, rel=0.25)

    def test_first_time_mean_reaches(self):
        process = NonHomogeneousPoissonProcess([1.0, 2.0, 2.0])
        assert process.first_time_mean_reaches(0.0) == 0.0
        assert process.first_time_mean_reaches(1.0) == pytest.approx(1.0)
        assert process.first_time_mean_reaches(2.0) == pytest.approx(1.5)
        # Beyond the listed intervals the final rate (2.0) is held.
        assert process.first_time_mean_reaches(9.0) == pytest.approx(5.0)

    def test_first_time_mean_reaches_infinite_when_rate_zero(self):
        process = NonHomogeneousPoissonProcess([1.0, 0.0])
        assert math.isinf(process.first_time_mean_reaches(5.0))

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            NonHomogeneousPoissonProcess([1.0, -0.5])
