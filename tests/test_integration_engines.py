"""Integration test: the boundary and naive engines agree in distribution.

The boundary engine is the library's workhorse; the naive engine is the
literal transcription of Definition 1.  On small graphs we compare their
empirical mean spread times with a two-sample z-style criterion — this is the
same check that experiment E9 performs, kept here in a quick form so the unit
test suite guards the equivalence.
"""

import math
import statistics

import pytest

from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.variants import Variant
from repro.dynamics.dichotomy import DynamicStarNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import cycle, path, star


def mean_and_std(process, factory, trials, seed_base):
    times = [process.run(factory(), rng=seed_base + seed).spread_time for seed in range(trials)]
    return statistics.fmean(times), statistics.stdev(times)


@pytest.mark.parametrize(
    "name,factory",
    [
        ("path6", lambda: StaticDynamicNetwork(path(range(6)))),
        ("star7", lambda: StaticDynamicNetwork(star(0, range(1, 7)))),
        ("dynstar6", lambda: DynamicStarNetwork(6)),
    ],
)
def test_engines_agree_on_mean_spread_time(name, factory):
    trials = 120
    boundary = AsynchronousRumorSpreading(engine="boundary")
    naive = AsynchronousRumorSpreading(engine="naive")
    mean_b, std_b = mean_and_std(boundary, factory, trials, 10_000)
    mean_n, std_n = mean_and_std(naive, factory, trials, 20_000)
    standard_error = math.sqrt(std_b**2 / trials + std_n**2 / trials)
    assert abs(mean_b - mean_n) < 5 * standard_error + 0.05


def test_engines_agree_for_push_only_variant():
    trials = 120
    factory = lambda: StaticDynamicNetwork(cycle(range(7)))
    boundary = AsynchronousRumorSpreading(engine="boundary", variant=Variant.PUSH)
    naive = AsynchronousRumorSpreading(engine="naive", variant=Variant.PUSH)
    mean_b, std_b = mean_and_std(boundary, factory, trials, 1)
    mean_n, std_n = mean_and_std(naive, factory, trials, 2)
    standard_error = math.sqrt(std_b**2 / trials + std_n**2 / trials)
    assert abs(mean_b - mean_n) < 5 * standard_error + 0.05
