"""Integration test: the boundary and naive engines agree in distribution.

The boundary engine is the library's workhorse; the naive engine is the
literal transcription of Definition 1.  On small graphs we compare their
empirical mean spread times with a two-sample z-style criterion — this is the
same check that experiment E9 performs, kept here in a quick form so the unit
test suite guards the equivalence.
"""

import math
import statistics

import pytest

from repro.core.asynchronous import AsynchronousRumorSpreading
from repro.core.faults import FaultModel
from repro.core.variants import Variant
from repro.dynamics.dichotomy import DynamicStarNetwork
from repro.dynamics.sequences import StaticDynamicNetwork
from repro.graphs.generators import clique, cycle, path, star


def mean_and_std(process, factory, trials, seed_base):
    times = [process.run(factory(), rng=seed_base + seed).spread_time for seed in range(trials)]
    return statistics.fmean(times), statistics.stdev(times)


@pytest.mark.parametrize(
    "name,factory",
    [
        ("path6", lambda: StaticDynamicNetwork(path(range(6)))),
        ("star7", lambda: StaticDynamicNetwork(star(0, range(1, 7)))),
        ("dynstar6", lambda: DynamicStarNetwork(6)),
    ],
)
def test_engines_agree_on_mean_spread_time(name, factory):
    trials = 120
    boundary = AsynchronousRumorSpreading(engine="boundary")
    naive = AsynchronousRumorSpreading(engine="naive")
    mean_b, std_b = mean_and_std(boundary, factory, trials, 10_000)
    mean_n, std_n = mean_and_std(naive, factory, trials, 20_000)
    standard_error = math.sqrt(std_b**2 / trials + std_n**2 / trials)
    assert abs(mean_b - mean_n) < 5 * standard_error + 0.05


def test_engines_agree_for_push_only_variant():
    trials = 120
    factory = lambda: StaticDynamicNetwork(cycle(range(7)))
    boundary = AsynchronousRumorSpreading(engine="boundary", variant=Variant.PUSH)
    naive = AsynchronousRumorSpreading(engine="naive", variant=Variant.PUSH)
    mean_b, std_b = mean_and_std(boundary, factory, trials, 1)
    mean_n, std_n = mean_and_std(naive, factory, trials, 2)
    standard_error = math.sqrt(std_b**2 / trials + std_n**2 / trials)
    assert abs(mean_b - mean_n) < 5 * standard_error + 0.05


@pytest.mark.parametrize(
    "name,faults",
    [
        ("drops", FaultModel(drop_probability=0.3)),
        ("scheduled_crash", FaultModel(crash_times={3: 0.75, 5: 1.5})),
        ("drops_and_crash", FaultModel(drop_probability=0.2, crash_times={4: 1.0})),
    ],
)
def test_engines_agree_under_faults(name, faults):
    # Message drops thin the Poisson contact processes and scheduled crashes
    # cut nodes out mid-run; the boundary engine handles both analytically
    # (rate scaling / rate rebuilds) while the naive engine applies them per
    # tick — their spread time distributions must still match.
    trials = 150
    factory = lambda: StaticDynamicNetwork(clique(range(8)))
    boundary = AsynchronousRumorSpreading(engine="boundary", faults=faults)
    naive = AsynchronousRumorSpreading(engine="naive", faults=faults)
    mean_b, std_b = mean_and_std(boundary, factory, trials, 30_000)
    mean_n, std_n = mean_and_std(naive, factory, trials, 40_000)
    standard_error = math.sqrt(std_b**2 / trials + std_n**2 / trials)
    assert abs(mean_b - mean_n) < 5 * standard_error + 0.05


def test_engines_agree_on_survivors_with_permanent_crash():
    # A node that is down from the start must never be informed, and both
    # engines must report completion over the survivors only.
    faults = FaultModel(crashed_nodes=frozenset({2}))
    for engine in ("boundary", "naive"):
        process = AsynchronousRumorSpreading(engine=engine, faults=faults)
        result = process.run(StaticDynamicNetwork(clique(range(6))), rng=11)
        assert result.completed
        assert 2 not in result.informed_times
        assert set(result.informed_times) == {0, 1, 3, 4, 5}
